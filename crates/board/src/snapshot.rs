//! Shared leaf helpers for the board-level snapshot codecs.
//!
//! The per-component codecs live next to the private state they
//! serialize (`Machine` in `machine.rs`, `PowerMonitor` in `power.rs`,
//! the bridge in `ethernet.rs`, the fault engine in `resilience.rs`, the
//! metrics hub in `metrics.rs`); this module only holds the small
//! encoders they share. Every reader validates what it decodes —
//! non-finite floats, zero frequencies and malformed tokens are rejected
//! with a [`CodecError`], never accepted or panicked on.

use swallow_energy::{Energy, Power};
use swallow_faults::FaultCounters;
use swallow_isa::{ControlToken, Token};
use swallow_sim::{ByteReader, ByteWriter, CodecError, Time, TimeDelta};

pub(crate) fn write_time(w: &mut ByteWriter, t: Time) {
    w.u64(t.as_ps());
}

pub(crate) fn read_time(r: &mut ByteReader<'_>) -> Result<Time, CodecError> {
    Ok(Time::from_ps(r.u64()?))
}

pub(crate) fn write_delta(w: &mut ByteWriter, d: TimeDelta) {
    w.u64(d.as_ps());
}

pub(crate) fn read_delta(r: &mut ByteReader<'_>) -> Result<TimeDelta, CodecError> {
    Ok(TimeDelta::from_ps(r.u64()?))
}

pub(crate) fn write_energy(w: &mut ByteWriter, e: Energy) {
    w.f64_bits(e.as_joules());
}

pub(crate) fn read_energy(r: &mut ByteReader<'_>) -> Result<Energy, CodecError> {
    let joules = r.f64_bits()?;
    if !joules.is_finite() {
        return Err(CodecError::Invalid("non-finite energy"));
    }
    Ok(Energy::from_joules(joules))
}

pub(crate) fn write_power(w: &mut ByteWriter, p: Power) {
    w.f64_bits(p.as_watts());
}

pub(crate) fn read_power(r: &mut ByteReader<'_>) -> Result<Power, CodecError> {
    let watts = r.f64_bits()?;
    if !watts.is_finite() {
        return Err(CodecError::Invalid("non-finite power"));
    }
    Ok(Power::from_watts(watts))
}

pub(crate) fn write_token(w: &mut ByteWriter, t: Token) {
    match t {
        Token::Data(b) => {
            w.u8(0);
            w.u8(b);
        }
        Token::Ctrl(ct) => {
            w.u8(1);
            w.u8(ct.0);
        }
    }
}

pub(crate) fn read_token(r: &mut ByteReader<'_>) -> Result<Token, CodecError> {
    match r.u8()? {
        0 => Ok(Token::Data(r.u8()?)),
        1 => Ok(Token::Ctrl(ControlToken(r.u8()?))),
        _ => Err(CodecError::Invalid("unknown token tag")),
    }
}

pub(crate) fn write_counters(w: &mut ByteWriter, c: &FaultCounters) {
    w.u64(c.link_downs);
    w.u64(c.link_ups);
    w.u64(c.retransmits);
    w.u64(c.dropped_tokens);
    w.u64(c.delivered_tokens);
    w.u64(c.core_stalls);
    w.u64(c.core_kills);
    w.u64(c.quarantined_cores);
    w.u64(c.brownouts);
    w.u64(c.reroutes);
}

pub(crate) fn read_counters(r: &mut ByteReader<'_>) -> Result<FaultCounters, CodecError> {
    Ok(FaultCounters {
        link_downs: r.u64()?,
        link_ups: r.u64()?,
        retransmits: r.u64()?,
        dropped_tokens: r.u64()?,
        delivered_tokens: r.u64()?,
        core_stalls: r.u64()?,
        core_kills: r.u64()?,
        quarantined_cores: r.u64()?,
        brownouts: r.u64()?,
        reroutes: r.u64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_and_counter_round_trips() {
        let mut w = ByteWriter::new();
        write_token(&mut w, Token::Data(0x7F));
        write_token(&mut w, Token::Ctrl(ControlToken::END));
        let counters = FaultCounters {
            link_downs: 3,
            reroutes: 2,
            ..FaultCounters::default()
        };
        write_counters(&mut w, &counters);
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(read_token(&mut r).unwrap(), Token::Data(0x7F));
        assert_eq!(read_token(&mut r).unwrap(), Token::Ctrl(ControlToken::END));
        assert_eq!(read_counters(&mut r).unwrap(), counters);
        r.expect_end().unwrap();
    }

    #[test]
    fn non_finite_floats_are_rejected() {
        let mut w = ByteWriter::new();
        w.f64_bits(f64::NAN);
        let bytes = w.finish();
        assert!(read_energy(&mut ByteReader::new(&bytes)).is_err());
        assert!(read_power(&mut ByteReader::new(&bytes)).is_err());
    }
}
