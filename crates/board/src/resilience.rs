//! Board-level fault application and recovery state.
//!
//! The [`FaultEngine`] is the machine's cursor into a
//! [`swallow_faults::FaultPlan`]: it knows which scheduled events are
//! still pending, when the next one (or the end of an active brownout)
//! is due, and accumulates the board-side resilience counters. The
//! actual application — marking fabric links down, stalling cores,
//! derating clocks — lives in `Machine::apply_due_faults`, because it
//! needs the whole machine; this module keeps the bookkeeping separable
//! and unit-testable.
//!
//! Determinism: faults are applied serially at the top of the machine's
//! edge processing, at the first base-clock grid instant at or after
//! their scheduled time. Every engine stops on those instants (the
//! fault cursor feeds `next_activity_at`, and the parallel engine
//! refuses to open an epoch across one), so the observable fault
//! timeline is engine-invariant. See DESIGN.md §3.10.

use crate::snapshot;
use swallow_energy::{CorePowerModel, Voltage};
use swallow_faults::{FaultCounters, FaultEvent, FaultPlan};
use swallow_noc::LinkDesc;
use swallow_sim::{ByteReader, ByteWriter, CodecError, Frequency, Time};

/// Pending-fault cursor plus recovery bookkeeping for one machine.
pub(crate) struct FaultEngine {
    plan: FaultPlan,
    /// Index of the first not-yet-applied event (the plan is sorted).
    cursor: usize,
    /// Board-side counters (fabric-side ones are read live).
    pub(crate) counters: FaultCounters,
    /// True while a brownout derating is in force.
    pub(crate) derated: bool,
    /// Instant at which the active brownout ends.
    pub(crate) derate_end: Time,
    /// Per-core clocks saved at brownout entry, restored at exit.
    pub(crate) nominal: Vec<Frequency>,
    /// Per-core power models saved at brownout entry (bit-exact restore).
    pub(crate) nominal_power: Vec<CorePowerModel>,
}

impl FaultEngine {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        FaultEngine {
            plan,
            cursor: 0,
            counters: FaultCounters::default(),
            derated: false,
            derate_end: Time::ZERO,
            nominal: Vec::new(),
            nominal_power: Vec::new(),
        }
    }

    /// True when anything is due at or before `now` — one comparison on
    /// the common (no faults) path, so the per-edge cost of an empty
    /// plan is negligible.
    #[inline]
    pub(crate) fn pending(&self, now: Time) -> bool {
        (self.derated && now >= self.derate_end)
            || self
                .plan
                .events()
                .get(self.cursor)
                .is_some_and(|e| e.at <= now)
    }

    /// Pops the next event due at or before `now`, in plan order.
    pub(crate) fn pop_due(&mut self, now: Time) -> Option<FaultEvent> {
        let ev = *self.plan.events().get(self.cursor)?;
        if ev.at <= now {
            self.cursor += 1;
            Some(ev)
        } else {
            None
        }
    }

    /// The next instant the fault subsystem needs the machine to stop
    /// on: the next scheduled event or the end of an active brownout.
    /// Feeds `next_activity_at`, so fast-forward cannot jump a fault and
    /// the parallel engine will not open an epoch across one.
    pub(crate) fn next_at(&self) -> Option<Time> {
        let ev = self.plan.events().get(self.cursor).map(|e| e.at);
        let restore = if self.derated {
            Some(self.derate_end)
        } else {
            None
        };
        match (ev, restore) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    // Snapshot codec. The plan itself travels in the machine's CONF
    // section (it is part of the configuration); this serializes only
    // the cursor and recovery bookkeeping layered on top of it.

    pub(crate) fn encode_state(&self, w: &mut ByteWriter) {
        w.u64(self.cursor as u64);
        snapshot::write_counters(w, &self.counters);
        w.bool(self.derated);
        snapshot::write_time(w, self.derate_end);
        w.u64(self.nominal.len() as u64);
        for f in &self.nominal {
            w.u64(f.as_hz());
        }
        w.u64(self.nominal_power.len() as u64);
        for p in &self.nominal_power {
            w.f64_bits(p.voltage().as_volts());
        }
    }

    pub(crate) fn restore_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        let cursor = r.u64()?;
        if cursor > self.plan.len() as u64 {
            return Err(CodecError::Invalid("fault cursor past plan end"));
        }
        self.cursor = cursor as usize;
        self.counters = snapshot::read_counters(r)?;
        self.derated = r.bool()?;
        self.derate_end = snapshot::read_time(r)?;
        self.nominal.clear();
        for _ in 0..r.len_prefixed(8)? {
            let hz = r.u64()?;
            if hz == 0 {
                return Err(CodecError::Invalid("zero nominal frequency"));
            }
            self.nominal.push(Frequency::from_hz(hz));
        }
        self.nominal_power.clear();
        for _ in 0..r.len_prefixed(8)? {
            let volts = r.f64_bits()?;
            if !volts.is_finite() || volts < 0.0 {
                return Err(CodecError::Invalid("bad saved core voltage"));
            }
            // `at_voltage` only swaps the operating point; the static and
            // idle constants are the model's own, so this reconstruction
            // is bit-exact (see `CorePowerModel::at_voltage`).
            self.nominal_power
                .push(CorePowerModel::swallow().at_voltage(Voltage::from_volts(volts)));
        }
        if self.derated
            && (self.nominal.is_empty() || self.nominal.len() != self.nominal_power.len())
        {
            return Err(CodecError::Invalid(
                "derated without saved operating points",
            ));
        }
        Ok(())
    }
}

/// Membership mask of the largest set of nodes that can all reach each
/// other over `links` (ties broken toward the component containing the
/// lowest node id). Cores outside this set after a reroute are
/// quarantined: they may sit in a minority island that can still talk
/// internally, but the machine's majority can neither feed them work
/// nor hear their results.
///
/// O(n·E) in the worst case — fine for the rare reroute event on
/// machines of a few hundred nodes.
pub(crate) fn largest_mutual_component(n: usize, links: &[LinkDesc]) -> Vec<bool> {
    let mut fwd = vec![Vec::new(); n];
    let mut rev = vec![Vec::new(); n];
    for l in links {
        let (a, b) = (l.from.raw() as usize, l.to.raw() as usize);
        if a < n && b < n {
            fwd[a].push(b);
            rev[b].push(a);
        }
    }
    let bfs = |adj: &[Vec<usize>], start: usize| -> Vec<bool> {
        let mut seen = vec![false; n];
        seen[start] = true;
        let mut queue = std::collections::VecDeque::from([start]);
        while let Some(at) = queue.pop_front() {
            for &next in &adj[at] {
                if !seen[next] {
                    seen[next] = true;
                    queue.push_back(next);
                }
            }
        }
        seen
    };
    let mut assigned = vec![false; n];
    let mut best: Vec<bool> = vec![false; n];
    let mut best_size = 0usize;
    for start in 0..n {
        if assigned[start] {
            continue;
        }
        let f = bfs(&fwd, start);
        let b = bfs(&rev, start);
        let comp: Vec<bool> = (0..n).map(|i| f[i] && b[i]).collect();
        let size = comp.iter().filter(|&&x| x).count();
        for (flag, in_comp) in assigned.iter_mut().zip(&comp) {
            *flag |= in_comp;
        }
        if size > best_size {
            best_size = size;
            best = comp;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use swallow_faults::FaultKind;
    use swallow_isa::NodeId;
    use swallow_noc::{Direction, LinkId};
    use swallow_sim::TimeDelta;

    fn desc(id: u32, from: u16, to: u16) -> LinkDesc {
        LinkDesc {
            id: LinkId::from_raw(id),
            from: NodeId(from),
            to: NodeId(to),
            dir: Direction::East,
        }
    }

    #[test]
    fn cursor_pops_in_order_and_reports_next() {
        let t = |ns: u64| Time::ZERO + TimeDelta::from_ns(ns);
        let plan = FaultPlan::new()
            .kill_core(t(30), NodeId(2))
            .link_down(t(10), LinkId::from_raw(0));
        let mut eng = FaultEngine::new(plan);
        assert_eq!(eng.next_at(), Some(t(10)));
        assert!(!eng.pending(t(9)));
        assert!(eng.pending(t(10)));
        let first = eng.pop_due(t(10)).expect("due");
        assert_eq!(first.kind, FaultKind::LinkDown(LinkId::from_raw(0)));
        assert!(eng.pop_due(t(10)).is_none());
        assert_eq!(eng.next_at(), Some(t(30)));
        // An active brownout's end also counts as a pending instant.
        eng.derated = true;
        eng.derate_end = t(20);
        assert_eq!(eng.next_at(), Some(t(20)));
        assert!(eng.pending(t(20)));
    }

    #[test]
    fn largest_component_prefers_size_then_lowest_id() {
        // 0<->1 is a 2-cycle; 2->3 is one-way; 4 is isolated.
        let links = [desc(0, 0, 1), desc(1, 1, 0), desc(2, 2, 3)];
        let keep = largest_mutual_component(5, &links);
        assert_eq!(keep, vec![true, true, false, false, false]);
        // Two equal 2-cycles: the one containing node 0 wins the tie.
        let links = [desc(0, 0, 1), desc(1, 1, 0), desc(2, 2, 3), desc(3, 3, 2)];
        let keep = largest_mutual_component(4, &links);
        assert_eq!(keep, vec![true, true, false, false]);
    }

    #[test]
    fn out_of_range_endpoints_are_ignored() {
        let links = [desc(0, 0, 9), desc(1, 9, 0)];
        let keep = largest_mutual_component(2, &links);
        assert_eq!(keep, vec![true, false]);
    }
}
