//! Per-component energy/utilization metrics on the monitor cadence.
//!
//! The [`MetricsHub`] is the numeric half of the observability layer (the
//! typed trace events are the other): every time the [`PowerMonitor`]
//! fires, the hub snapshots the *cumulative* energy attributable to each
//! supply rail of each slice — exactly the split the monitor itself uses
//! (core + on-chip-link energy onto the node's 1 V package rail;
//! board/FFC link + support energy onto the 3.3 V I/O rail) — and records
//! the delta since the previous snapshot as one [`SupplyRow`] per slice.
//!
//! Because rows are first differences of cumulative counters, their sum
//! telescopes: after [`MetricsHub::sample`] at the final instant, the
//! integrated row energy equals the machine's `EnergyLedger` total up to
//! f64 association — the conservation property pinned by the
//! `metrics_conservation` tests. Sampling only *reads* simulation state,
//! so enabling metrics can never perturb a run.

use crate::power::{PowerMonitor, IO_RAIL, RAILS};
use crate::snapshot;
use crate::topology::GridSpec;
use swallow_energy::Energy;
use swallow_faults::FaultCounters;
use swallow_noc::{Direction, Fabric};
use swallow_sim::{ByteReader, ByteWriter, CodecError, Time, TimeDelta};
use swallow_xcore::Core;

/// One monitor-window measurement of one slice: the energy each supply
/// rail delivered during the window, plus the SMPS conversion loss. This
/// is the row format of the CSV exporter (the paper's measurement
/// daughter-board view: five shunts per slice plus the input-side loss).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SupplyRow {
    /// End of the measurement window.
    pub at: Time,
    /// Window length.
    pub span: TimeDelta,
    /// Slice index.
    pub slice: u16,
    /// Output-side energy per rail (0–3 the 1 V core rails, 4 the 3.3 V
    /// I/O rail) during the window.
    pub rails: [Energy; RAILS],
    /// SMPS conversion-loss energy during the window.
    pub loss: Energy,
}

impl SupplyRow {
    /// Total energy the slice drew from the 5 V bus during this window
    /// (rail loads plus conversion loss).
    pub fn total(&self) -> Energy {
        self.rails.iter().copied().sum::<Energy>() + self.loss
    }
}

/// Accumulates per-rail energy time series on the power-monitor cadence.
pub struct MetricsHub {
    spec: GridSpec,
    enabled: bool,
    last_sample_at: Time,
    /// Cumulative rail energy at the last sample, per slice.
    last_rail: Vec<[Energy; RAILS]>,
    /// Cumulative conversion-loss energy at the last sample, per slice.
    last_loss: Vec<Energy>,
    /// Reusable cumulative-energy scratch (sized once at construction).
    scratch_rail: Vec<[Energy; RAILS]>,
    rows: Vec<SupplyRow>,
    /// Latest cumulative fault/resilience counter snapshot, recorded on
    /// the same cadence as the rows.
    fault_counters: FaultCounters,
}

impl MetricsHub {
    /// Creates a hub for a machine of `spec` size.
    pub fn new(spec: GridSpec, enabled: bool) -> Self {
        let slices = spec.slice_count();
        MetricsHub {
            spec,
            enabled,
            last_sample_at: Time::ZERO,
            last_rail: vec![[Energy::ZERO; RAILS]; slices],
            last_loss: vec![Energy::ZERO; slices],
            scratch_rail: vec![[Energy::ZERO; RAILS]; slices],
            rows: Vec::new(),
            fault_counters: FaultCounters::default(),
        }
    }

    /// True when sampling is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Enables or disables sampling.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Recorded rows, oldest first (one per slice per monitor firing).
    pub fn rows(&self) -> &[SupplyRow] {
        &self.rows
    }

    /// Records the machine's cumulative fault/resilience counters (a
    /// snapshot, like the rows: monotone counters, latest wins). No-op
    /// while disabled, mirroring [`MetricsHub::sample`].
    pub fn record_faults(&mut self, counters: FaultCounters) {
        if self.enabled {
            self.fault_counters = counters;
        }
    }

    /// The latest recorded fault/resilience counter snapshot.
    pub fn fault_counters(&self) -> FaultCounters {
        self.fault_counters
    }

    /// Integrated energy over every recorded row (rail loads plus
    /// conversion losses). After a final flush this equals the machine
    /// ledger total up to f64 association.
    pub fn total_energy(&self) -> Energy {
        self.rows.iter().map(|r| r.total()).sum()
    }

    /// Takes one measurement at `now`, recording a [`SupplyRow`] per
    /// slice for the window since the previous sample. Call whenever the
    /// [`PowerMonitor`] has just updated (and once more at the end of a
    /// run, after a final monitor flush, to capture the residual window).
    ///
    /// Pure read of cores/fabric/monitor: the rail split mirrors
    /// [`PowerMonitor::update`] — core energy and on-chip link energy to
    /// the node's package rail, board/FFC link energy and support energy
    /// to the slice I/O rail — but against *cumulative* counters, so row
    /// sums telescope exactly.
    pub fn sample(&mut self, now: Time, cores: &[Core], fabric: &Fabric, monitor: &PowerMonitor) {
        if !self.enabled || now <= self.last_sample_at {
            return;
        }
        let span = now.since(self.last_sample_at);
        let core_count = self.spec.core_count();
        self.scratch_rail.fill([Energy::ZERO; RAILS]);
        for s in fabric.link_stats() {
            let from = s.from.raw() as usize;
            if from >= core_count {
                continue; // bridge-originated tokens: host powered
            }
            let slice = self.spec.slice_of(s.from);
            if s.dir == Direction::Internal {
                self.scratch_rail[slice][monitor.rail_of(s.from)] += s.energy;
            } else {
                self.scratch_rail[slice][IO_RAIL] += s.energy;
            }
        }
        for node in self.spec.nodes() {
            let slice = self.spec.slice_of(node);
            let rail = monitor.rail_of(node);
            self.scratch_rail[slice][rail] += cores[node.raw() as usize].ledger().total();
        }
        for slice in 0..self.spec.slice_count() {
            self.scratch_rail[slice][IO_RAIL] += monitor.support_energy(slice);
            let mut rails = [Energy::ZERO; RAILS];
            for (rail, delta) in rails.iter_mut().enumerate() {
                *delta = self.scratch_rail[slice][rail] - self.last_rail[slice][rail];
            }
            let loss = monitor.loss_energy(slice) - self.last_loss[slice];
            self.last_rail[slice] = self.scratch_rail[slice];
            self.last_loss[slice] = monitor.loss_energy(slice);
            self.rows.push(SupplyRow {
                at: now,
                span,
                slice: slice as u16,
                rails,
                loss,
            });
        }
        self.last_sample_at = now;
    }

    // Snapshot codec. The per-slice vector lengths follow from the grid
    // spec (already restored via the machine's CONF section); only the
    // row count is dynamic.

    pub(crate) fn encode_state(&self, w: &mut ByteWriter) {
        w.bool(self.enabled);
        snapshot::write_time(w, self.last_sample_at);
        for rails in &self.last_rail {
            for &e in rails {
                snapshot::write_energy(w, e);
            }
        }
        for &e in &self.last_loss {
            snapshot::write_energy(w, e);
        }
        w.u64(self.rows.len() as u64);
        for row in &self.rows {
            snapshot::write_time(w, row.at);
            snapshot::write_delta(w, row.span);
            w.u16(row.slice);
            for &e in &row.rails {
                snapshot::write_energy(w, e);
            }
            snapshot::write_energy(w, row.loss);
        }
        snapshot::write_counters(w, &self.fault_counters);
    }

    pub(crate) fn restore_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        self.enabled = r.bool()?;
        self.last_sample_at = snapshot::read_time(r)?;
        for rails in &mut self.last_rail {
            for e in rails.iter_mut() {
                *e = snapshot::read_energy(r)?;
            }
        }
        for e in &mut self.last_loss {
            *e = snapshot::read_energy(r)?;
        }
        let slices = self.spec.slice_count();
        self.rows.clear();
        for _ in 0..r.len_prefixed(26 + 8 * RAILS)? {
            let at = snapshot::read_time(r)?;
            let span = snapshot::read_delta(r)?;
            let slice = r.u16()?;
            if (slice as usize) >= slices {
                return Err(CodecError::Invalid("metrics row names an unknown slice"));
            }
            let mut rails = [Energy::ZERO; RAILS];
            for e in rails.iter_mut() {
                *e = snapshot::read_energy(r)?;
            }
            let loss = snapshot::read_energy(r)?;
            self.rows.push(SupplyRow {
                at,
                span,
                slice,
                rails,
                loss,
            });
        }
        self.fault_counters = snapshot::read_counters(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_hub_records_nothing() {
        let spec = GridSpec::ONE_SLICE;
        let mut machine = crate::Machine::new(crate::MachineConfig::one_slice());
        let mut hub = MetricsHub::new(spec, false);
        machine.run_for(TimeDelta::from_us(3));
        // Direct sample against live components: disabled means no rows.
        let now = machine.now();
        let (cores, fabric, monitor) = machine.parts();
        hub.sample(now, cores, fabric, monitor);
        assert!(hub.rows().is_empty());
        assert_eq!(hub.total_energy(), Energy::ZERO);
    }

    #[test]
    fn rows_telescope_to_cumulative_totals() {
        let mut machine = crate::Machine::new(crate::MachineConfig::one_slice());
        machine.metrics_mut().set_enabled(true);
        machine.run_for(TimeDelta::from_us(5));
        machine.flush_metrics();
        let hub = machine.metrics();
        assert!(!hub.rows().is_empty(), "idle machine still burns energy");
        let ledger = machine.machine_ledger().total().as_joules();
        let metered = hub.total_energy().as_joules();
        assert!(
            (metered - ledger).abs() <= 1e-9 * ledger.abs().max(f64::MIN_POSITIVE),
            "metered {metered} J vs ledger {ledger} J"
        );
    }
}
