//! The power tree and measurement subsystem (§II, §III.A).
//!
//! Per slice: four 1 V SMPS rails feed two packages (four cores) each;
//! one 3.3 V rail feeds the link drivers and support logic. Shunt
//! resistors on each SMPS *output* are what the measurement daughter-board
//! digitises, so probe readings report rail *load* power; conversion
//! losses appear only at the 5 V input (§III.A's 3.1 W → ≈4.5 W per
//! slice).
//!
//! [`PowerMonitor::update`] runs on a fixed cadence (default 1 µs — the
//! ADC's all-channel rate): it differentiates the energy ledgers into rail
//! powers, feeds the optional [`AdcBoard`]s and pushes live readings into
//! every core's power-probe resource (the self-measurement loop).

use crate::snapshot;
use crate::topology::{GridSpec, CHIP_COLS, CHIP_ROWS};
use swallow_energy::{AdcBoard, Energy, Power, Smps};
use swallow_noc::{Direction, Fabric};
use swallow_sim::{
    ByteReader, ByteWriter, CodecError, Time, TimeDelta, TraceEvent, TraceSink, Tracer,
};
use swallow_xcore::Core;

/// Default monitor cadence: the ADC's 1 MS/s all-channel rate.
pub const DEFAULT_MONITOR_WINDOW: TimeDelta = TimeDelta::from_us(1);

/// Support-logic power per slice, drawn from the 3.3 V rail (clock
/// distribution, level shifters, LEDs — the Fig. 2 "other" wedge,
/// ≈10 mW per node).
pub const SUPPORT_POWER_PER_SLICE_MW: f64 = 160.0;

/// Rails per slice: four 1 V core rails + one 3.3 V I/O rail.
pub const RAILS: usize = 5;
/// Index of the I/O rail in per-slice rail arrays.
pub const IO_RAIL: usize = 4;

/// Live power-tree state for a whole machine.
pub struct PowerMonitor {
    spec: GridSpec,
    window: TimeDelta,
    next_update: Time,
    last_core_energy: Vec<Energy>,
    last_internal_by_node: Vec<Energy>,
    last_external_by_slice: Vec<Energy>,
    /// Latest rail output (load) power per slice.
    rails: Vec<[Power; RAILS]>,
    /// Cumulative SMPS conversion-loss energy per slice.
    loss_energy: Vec<Energy>,
    /// Cumulative support-logic energy per slice.
    support_energy: Vec<Energy>,
    adc: Vec<Option<AdcBoard>>,
    smps_core: Smps,
    smps_io: Smps,
    /// Reusable window scratch: fresh on-chip link energy per source node.
    /// `update` is on every engine's hot path (it runs once per monitor
    /// window, and the parallel engine bounds every epoch by it), so all
    /// three scratch buffers are sized once at construction and only ever
    /// `fill`ed — the update itself performs no heap allocation.
    scratch_internal_by_node: Vec<Energy>,
    /// Reusable window scratch: fresh board/FFC link energy per slice.
    scratch_external_by_slice: Vec<Energy>,
    /// Reusable window scratch: fresh energy per rail per slice.
    scratch_rail_energy: Vec<[Energy; RAILS]>,
    /// Trace sink for [`TraceEvent::SupplySample`] records (one per rail
    /// per slice per update).
    tracer: Tracer,
}

impl PowerMonitor {
    /// Creates a monitor for a machine of `spec` size.
    pub fn new(spec: GridSpec, window: TimeDelta) -> Self {
        let slices = spec.slice_count();
        PowerMonitor {
            spec,
            window,
            next_update: Time::ZERO + window,
            last_core_energy: vec![Energy::ZERO; spec.core_count()],
            last_internal_by_node: vec![Energy::ZERO; spec.core_count()],
            last_external_by_slice: vec![Energy::ZERO; slices],
            rails: vec![[Power::ZERO; RAILS]; slices],
            loss_energy: vec![Energy::ZERO; slices],
            support_energy: vec![Energy::ZERO; slices],
            adc: (0..slices).map(|_| None).collect(),
            smps_core: Smps::swallow_core_rail(),
            smps_io: Smps::swallow_io_rail(),
            scratch_internal_by_node: vec![Energy::ZERO; spec.core_count()],
            scratch_external_by_slice: vec![Energy::ZERO; slices],
            scratch_rail_energy: vec![[Energy::ZERO; RAILS]; slices],
            tracer: Tracer::Off,
        }
    }

    /// Replaces the monitor's trace sink.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The monitor's trace sink.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The monitor cadence.
    pub fn window(&self) -> TimeDelta {
        self.window
    }

    /// Fits a measurement daughter-board to one slice.
    pub fn fit_adc(&mut self, slice: usize, board: AdcBoard) {
        if slice < self.adc.len() {
            self.adc[slice] = Some(board);
        }
    }

    /// The daughter-board of a slice, when fitted.
    pub fn adc(&self, slice: usize) -> Option<&AdcBoard> {
        self.adc.get(slice).and_then(|a| a.as_ref())
    }

    /// When the next update is due.
    pub fn next_update(&self) -> Time {
        self.next_update
    }

    /// Which rail a core node's package hangs off (0–3).
    pub fn rail_of(&self, node: swallow_isa::NodeId) -> usize {
        let c = self.spec.coord_of(node);
        let local_package = (c.y % CHIP_ROWS) * CHIP_COLS + (c.x % CHIP_COLS);
        (local_package / 2) as usize
    }

    /// Latest measured load of one rail of one slice.
    pub fn rail_power(&self, slice: usize, rail: usize) -> Power {
        self.rails
            .get(slice)
            .and_then(|r| r.get(rail))
            .copied()
            .unwrap_or(Power::ZERO)
    }

    /// Latest total load of a slice (what the five shunts sum to).
    pub fn slice_load_power(&self, slice: usize) -> Power {
        (0..RAILS).map(|r| self.rail_power(slice, r)).sum()
    }

    /// Latest slice power at the 5 V input, conversion losses included.
    pub fn slice_input_power(&self, slice: usize) -> Power {
        let core: Power = (0..IO_RAIL)
            .map(|r| self.smps_core.input_power(self.rail_power(slice, r)))
            .sum();
        core + self.smps_io.input_power(self.rail_power(slice, IO_RAIL))
    }

    /// Latest machine power at the inputs of every slice.
    pub fn machine_input_power(&self) -> Power {
        (0..self.spec.slice_count())
            .map(|s| self.slice_input_power(s))
            .sum()
    }

    /// Cumulative SMPS conversion-loss energy of a slice.
    pub fn loss_energy(&self, slice: usize) -> Energy {
        self.loss_energy.get(slice).copied().unwrap_or(Energy::ZERO)
    }

    /// Cumulative support-logic energy of a slice.
    pub fn support_energy(&self, slice: usize) -> Energy {
        self.support_energy
            .get(slice)
            .copied()
            .unwrap_or(Energy::ZERO)
    }

    /// Differentiates the ledgers over the elapsed window, refreshes rail
    /// powers, samples ADCs and pushes probe readings into the cores.
    pub fn update(&mut self, now: Time, cores: &mut [Core], fabric: &Fabric) {
        let span = now.saturating_since(self.next_update - self.window);
        if span.is_zero() {
            return;
        }
        self.next_update = now + self.window;
        let slices = self.spec.slice_count();
        let core_count = self.spec.core_count();
        // Allocation-free invariant: the scratch buffers were sized at
        // construction and are only refilled here; if these lengths ever
        // drift, something resized them (and therefore reallocated).
        debug_assert_eq!(self.scratch_internal_by_node.len(), core_count);
        debug_assert_eq!(self.scratch_external_by_slice.len(), slices);
        debug_assert_eq!(self.scratch_rail_energy.len(), slices);
        self.scratch_internal_by_node.fill(Energy::ZERO);
        self.scratch_external_by_slice.fill(Energy::ZERO);
        self.scratch_rail_energy.fill([Energy::ZERO; RAILS]);

        // Split fresh link energy: on-chip links charge their source
        // node's 1 V rail; board/FFC links charge the slice I/O rail.
        for s in fabric.link_stats() {
            let from = s.from.raw() as usize;
            if from >= core_count {
                continue; // bridge-originated tokens: host powered
            }
            if s.dir == Direction::Internal {
                self.scratch_internal_by_node[from] += s.energy;
            } else {
                self.scratch_external_by_slice[self.spec.slice_of(s.from)] += s.energy;
            }
        }

        for node in self.spec.nodes() {
            let i = node.raw() as usize;
            let core_delta = cores[i].ledger().total() - self.last_core_energy[i];
            let link_delta = self.scratch_internal_by_node[i] - self.last_internal_by_node[i];
            self.last_core_energy[i] = cores[i].ledger().total();
            self.last_internal_by_node[i] = self.scratch_internal_by_node[i];
            let slice = self.spec.slice_of(node);
            let rail = self.rail_of(node);
            self.scratch_rail_energy[slice][rail] += core_delta + link_delta;
        }
        let support = Power::from_milliwatts(SUPPORT_POWER_PER_SLICE_MW);
        for slice in 0..slices {
            let ext_delta =
                self.scratch_external_by_slice[slice] - self.last_external_by_slice[slice];
            self.last_external_by_slice[slice] = self.scratch_external_by_slice[slice];
            self.scratch_rail_energy[slice][IO_RAIL] += ext_delta + support * span;
            self.support_energy[slice] += support * span;

            for (rail, energy) in self.scratch_rail_energy[slice]
                .iter()
                .enumerate()
                .take(RAILS)
            {
                self.rails[slice][rail] = energy.over(span);
            }
            // Integrate conversion losses at the measured load.
            let loss: Power = (0..IO_RAIL)
                .map(|r| self.smps_core.loss(self.rails[slice][r]))
                .sum::<Power>()
                + self.smps_io.loss(self.rails[slice][IO_RAIL]);
            self.loss_energy[slice] += loss * span;

            if let Some(adc) = self.adc[slice].as_mut() {
                adc.sample(now, &self.rails[slice]);
            }
            if self.tracer.is_enabled() {
                for rail in 0..RAILS {
                    let microwatts =
                        self.rails[slice][rail].as_microwatts().max(0.0).round() as u64;
                    self.tracer.emit(
                        now,
                        TraceEvent::SupplySample {
                            slice: slice as u16,
                            rail: rail as u8,
                            microwatts,
                        },
                    );
                }
            }
        }

        // Self-measurement: every core sees its slice's five rails.
        for node in self.spec.nodes() {
            let slice = self.spec.slice_of(node);
            let readings = self.rails[slice];
            let core = &mut cores[node.raw() as usize];
            for (ch, p) in readings.iter().enumerate() {
                core.set_probe_reading(ch, p.as_microwatts() as u32);
            }
        }
    }

    // Snapshot codec. The lengths of every vector are a pure function of
    // the grid spec (restored from the machine's CONF section before this
    // runs), so they are not re-encoded; the SMPS models and the scratch
    // buffers are constants/derived, and ADC daughter-boards are
    // observational test fixtures that are not part of a snapshot.

    pub(crate) fn encode_state(&self, w: &mut ByteWriter) {
        snapshot::write_time(w, self.next_update);
        for &e in &self.last_core_energy {
            snapshot::write_energy(w, e);
        }
        for &e in &self.last_internal_by_node {
            snapshot::write_energy(w, e);
        }
        for &e in &self.last_external_by_slice {
            snapshot::write_energy(w, e);
        }
        for rails in &self.rails {
            for &p in rails {
                snapshot::write_power(w, p);
            }
        }
        for &e in &self.loss_energy {
            snapshot::write_energy(w, e);
        }
        for &e in &self.support_energy {
            snapshot::write_energy(w, e);
        }
    }

    pub(crate) fn restore_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        self.next_update = snapshot::read_time(r)?;
        for e in &mut self.last_core_energy {
            *e = snapshot::read_energy(r)?;
        }
        for e in &mut self.last_internal_by_node {
            *e = snapshot::read_energy(r)?;
        }
        for e in &mut self.last_external_by_slice {
            *e = snapshot::read_energy(r)?;
        }
        for rails in &mut self.rails {
            for p in rails.iter_mut() {
                *p = snapshot::read_power(r)?;
            }
        }
        for e in &mut self.loss_energy {
            *e = snapshot::read_energy(r)?;
        }
        for e in &mut self.support_energy {
            *e = snapshot::read_energy(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swallow_isa::NodeId;

    #[test]
    fn rail_assignment_pairs_packages() {
        let spec = GridSpec::ONE_SLICE;
        let m = PowerMonitor::new(spec, DEFAULT_MONITOR_WINDOW);
        // Packages 0,1 -> rail 0; 2,3 -> rail 1; 4,5 -> rail 2; 6,7 -> rail 3.
        let mut rail_counts = [0usize; 4];
        for node in spec.nodes() {
            rail_counts[m.rail_of(node)] += 1;
        }
        assert_eq!(rail_counts, [4, 4, 4, 4]);
        // Both cores of one package share a rail.
        use swallow_noc::routing::Layer;
        let v = spec.node_at(2, 1, Layer::Vertical);
        let h = spec.node_at(2, 1, Layer::Horizontal);
        assert_eq!(m.rail_of(v), m.rail_of(h));
        let _ = NodeId(0);
    }

    #[test]
    fn empty_monitor_reports_zero() {
        let m = PowerMonitor::new(GridSpec::ONE_SLICE, DEFAULT_MONITOR_WINDOW);
        assert_eq!(m.slice_load_power(0), Power::ZERO);
        assert_eq!(m.rail_power(9, 0), Power::ZERO); // out of range is safe
                                                     // Input power still includes the fixed SMPS overhead.
        assert!(m.slice_input_power(0).as_milliwatts() > 0.0);
    }
}
