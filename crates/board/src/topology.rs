//! Physical structure: packages, slices and grids.
//!
//! A Swallow *slice* (§IV.B) carries eight XS1-L2A packages in a 4-wide ×
//! 2-tall arrangement — sixteen cores. Each package holds two cores, each
//! with its own switch, joined by four internal links; one core exposes
//! its two external links North/South (the vertical layer), the other
//! East/West (the horizontal layer) — the *unwoven lattice* of Fig. 7.
//!
//! Slices tile into a grid connected by 30 cm FFC ribbon cables; cables
//! carry the off-board wire class of Table I (50× the on-board energy
//! per bit). Each slice exposes twelve edge headers (8 vertical + 4
//! horizontal); ten are network-usable, two of the South headers are
//! reserved for Ethernet bridges (§V.E) — see `DESIGN.md` §5.

use swallow_energy::WireClass;
use swallow_isa::NodeId;
use swallow_noc::routing::{Coord, Layer};
use swallow_noc::{Direction, FabricBuilder, LinkParams};

/// Packages per slice row.
pub const CHIP_COLS: u16 = 4;
/// Package rows per slice.
pub const CHIP_ROWS: u16 = 2;
/// Cores per slice (16: eight dual-core packages).
pub const CORES_PER_SLICE: u16 = CHIP_COLS * CHIP_ROWS * 2;
/// Internal link pairs between the two cores of a package (§V.A: "the
/// internal links have four times more bandwidth than external links").
pub const INTERNAL_LINK_PAIRS: usize = 4;

/// Size of a machine in slices.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GridSpec {
    /// Slices per row of the machine.
    pub slices_x: u16,
    /// Slice rows.
    pub slices_y: u16,
}

impl GridSpec {
    /// A single slice.
    pub const ONE_SLICE: GridSpec = GridSpec {
        slices_x: 1,
        slices_y: 1,
    };

    /// Total slices.
    pub fn slice_count(&self) -> usize {
        self.slices_x as usize * self.slices_y as usize
    }

    /// Total cores.
    pub fn core_count(&self) -> usize {
        self.slice_count() * CORES_PER_SLICE as usize
    }

    /// Package columns across the whole machine.
    pub fn package_cols(&self) -> u16 {
        self.slices_x * CHIP_COLS
    }

    /// Package rows across the whole machine.
    pub fn package_rows(&self) -> u16 {
        self.slices_y * CHIP_ROWS
    }

    /// Node id of the core at global package `(gx, gy)` on `layer`.
    ///
    /// # Panics
    ///
    /// Panics when the coordinate is outside the grid.
    pub fn node_at(&self, gx: u16, gy: u16, layer: Layer) -> NodeId {
        assert!(gx < self.package_cols() && gy < self.package_rows());
        let package = gy as u32 * self.package_cols() as u32 + gx as u32;
        let l = match layer {
            Layer::Vertical => 0,
            Layer::Horizontal => 1,
        };
        NodeId((package * 2 + l) as u16)
    }

    /// The lattice coordinate of a core node.
    pub fn coord_of(&self, node: NodeId) -> Coord {
        let raw = node.raw() as u32;
        let package = raw / 2;
        let layer = if raw.is_multiple_of(2) {
            Layer::Vertical
        } else {
            Layer::Horizontal
        };
        Coord {
            x: (package % self.package_cols() as u32) as u16,
            y: (package / self.package_cols() as u32) as u16,
            layer,
        }
    }

    /// Which slice (row-major) a core node belongs to.
    pub fn slice_of(&self, node: NodeId) -> usize {
        let c = self.coord_of(node);
        let sx = c.x / CHIP_COLS;
        let sy = c.y / CHIP_ROWS;
        (sy * self.slices_x + sx) as usize
    }

    /// All core node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.core_count() as u16).map(NodeId)
    }

    /// Package indices in *slice-major* order: all eight packages of
    /// slice 0 (row-major within the slice), then slice 1, and so on in
    /// slice row-major order. Raw package indices are row-major over the
    /// whole machine, which interleaves the slices of a multi-column
    /// grid; dealing shards from this order instead keeps each shard's
    /// packages inside as few slices as possible, so shard boundaries
    /// land on the slow inter-slice FFC cables (4× the on-chip token
    /// time, Table I) and the parallel engine's pairwise lookahead
    /// matrix gets long horizons between shards. Identical to `0..n` on
    /// a single-slice machine.
    pub fn packages_slice_major(&self) -> Vec<usize> {
        let cols = self.package_cols() as usize;
        let mut order = Vec::with_capacity(self.package_rows() as usize * cols);
        for sy in 0..self.slices_y as usize {
            for sx in 0..self.slices_x as usize {
                for row in 0..CHIP_ROWS as usize {
                    for col in 0..CHIP_COLS as usize {
                        let gy = sy * CHIP_ROWS as usize + row;
                        let gx = sx * CHIP_COLS as usize + col;
                        order.push(gy * cols + gx);
                    }
                }
            }
        }
        order
    }
}

/// A wired topology ready to become a fabric.
pub struct Topology {
    /// The partially built fabric (links added, router pending).
    pub builder: FabricBuilder,
    /// Lattice coordinates per node (bridge nodes included).
    pub coords: Vec<Coord>,
    /// Node id of the Ethernet bridge, when fitted.
    pub bridge: Option<NodeId>,
    /// Inter-slice cables that were left unconnected by fault injection.
    pub faulted_cables: usize,
}

/// Options for [`build_topology`].
#[derive(Clone, Debug)]
pub struct TopologyOptions {
    /// Fit one Ethernet bridge on the machine's south edge (§V.E).
    pub bridge: bool,
    /// Parallel link pairs between the two cores of a package (the real
    /// XS1-L2A has four; reducing it is an ablation knob for studying
    /// what link aggregation buys).
    pub internal_link_pairs: usize,
    /// Fraction of inter-slice FFC cables that fail (connector yield,
    /// §IV.B: "yield issues, mostly with edge connectors"). Faulted
    /// cables are simply not wired; pair with shortest-path routing.
    pub ffc_fault_rate: f64,
    /// Seed for fault injection.
    pub fault_seed: u64,
}

impl Default for TopologyOptions {
    fn default() -> Self {
        TopologyOptions {
            bridge: false,
            internal_link_pairs: INTERNAL_LINK_PAIRS,
            ffc_fault_rate: 0.0,
            fault_seed: 0,
        }
    }
}

/// Wires a full machine: internal package links, on-board lattice traces
/// and inter-slice FFC cables, with Table I wire classes throughout.
pub fn build_topology(spec: GridSpec, options: &TopologyOptions) -> Topology {
    let core_nodes = spec.core_count();
    let bridge_nodes = usize::from(options.bridge);
    let mut builder = FabricBuilder::new(core_nodes + bridge_nodes);
    let mut rng = swallow_sim::DetRng::seed_from(options.fault_seed);
    let mut faulted = 0;

    let on_chip = LinkParams::from_class(WireClass::OnChip);
    let board_v = LinkParams::from_class(WireClass::BoardVertical);
    let board_h = LinkParams::from_class(WireClass::BoardHorizontal);
    let ffc = LinkParams::from_class(WireClass::OffBoardFfc);

    // Package-internal links: four aggregated pairs per package.
    for gy in 0..spec.package_rows() {
        for gx in 0..spec.package_cols() {
            let v = spec.node_at(gx, gy, Layer::Vertical);
            let h = spec.node_at(gx, gy, Layer::Horizontal);
            for _ in 0..options.internal_link_pairs.max(1) {
                builder.link_two_way(v, h, Direction::Internal, on_chip);
            }
        }
    }

    // Vertical lattice: V-layer cores, adjacent package rows.
    for gy in 0..spec.package_rows() - 1 {
        for gx in 0..spec.package_cols() {
            let upper = spec.node_at(gx, gy, Layer::Vertical);
            let lower = spec.node_at(gx, gy + 1, Layer::Vertical);
            let same_slice = gy % CHIP_ROWS != CHIP_ROWS - 1;
            let params = if same_slice { board_v } else { ffc };
            if !same_slice && rng.chance(options.ffc_fault_rate) {
                faulted += 1;
                continue;
            }
            builder.link_two_way(upper, lower, Direction::South, params);
        }
    }

    // Horizontal lattice: H-layer cores, adjacent package columns.
    for gy in 0..spec.package_rows() {
        for gx in 0..spec.package_cols() - 1 {
            let left = spec.node_at(gx, gy, Layer::Horizontal);
            let right = spec.node_at(gx + 1, gy, Layer::Horizontal);
            let same_slice = gx % CHIP_COLS != CHIP_COLS - 1;
            let params = if same_slice { board_h } else { ffc };
            if !same_slice && rng.chance(options.ffc_fault_rate) {
                faulted += 1;
                continue;
            }
            builder.link_two_way(left, right, Direction::East, params);
        }
    }

    // Coordinates for the lattice router.
    let mut coords: Vec<Coord> = spec.nodes().map(|n| spec.coord_of(n)).collect();

    // The Ethernet bridge hangs off a reserved South header at the
    // bottom-left of the machine, addressable as a network node (§V.E).
    let bridge = if options.bridge {
        let bridge_node = NodeId(core_nodes as u16);
        let attach = spec.node_at(0, spec.package_rows() - 1, Layer::Vertical);
        builder.link_two_way(attach, bridge_node, Direction::South, board_v);
        coords.push(Coord {
            x: 0,
            y: spec.package_rows(),
            layer: Layer::Vertical,
        });
        Some(bridge_node)
    } else {
        None
    };

    Topology {
        builder,
        coords,
        bridge,
        faulted_cables: faulted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_numbering_round_trips() {
        let spec = GridSpec {
            slices_x: 2,
            slices_y: 3,
        };
        assert_eq!(spec.core_count(), 96);
        for node in spec.nodes() {
            let c = spec.coord_of(node);
            assert_eq!(spec.node_at(c.x, c.y, c.layer), node);
        }
    }

    #[test]
    fn slice_assignment_is_block_structured() {
        let spec = GridSpec {
            slices_x: 2,
            slices_y: 1,
        };
        // First slice: package columns 0..4; second: 4..8.
        let in_slice0 = spec.node_at(3, 1, Layer::Horizontal);
        let in_slice1 = spec.node_at(4, 0, Layer::Vertical);
        assert_eq!(spec.slice_of(in_slice0), 0);
        assert_eq!(spec.slice_of(in_slice1), 1);
        let per_slice = spec.nodes().filter(|&n| spec.slice_of(n) == 0).count();
        assert_eq!(per_slice, CORES_PER_SLICE as usize);
    }

    #[test]
    fn slice_major_order_groups_whole_slices() {
        // Single slice: identity.
        let one = GridSpec::ONE_SLICE.packages_slice_major();
        assert_eq!(one, (0..8).collect::<Vec<_>>());
        // 2×1 grid: each slice's eight packages are contiguous in the
        // order, and together they permute 0..16.
        let spec = GridSpec {
            slices_x: 2,
            slices_y: 1,
        };
        let order = spec.packages_slice_major();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>());
        for (slice, chunk) in order.chunks(8).enumerate() {
            for &p in chunk {
                let node = NodeId((p * 2) as u16);
                assert_eq!(spec.slice_of(node), slice, "package {p}");
            }
        }
    }

    #[test]
    fn one_slice_link_budget() {
        // 8 packages × 4 internal pairs = 64 directed-link pairs internal;
        // vertical: 4 columns × 1 row gap = 4 pairs; horizontal: 2 rows ×
        // 3 gaps = 6 pairs. Total directed links = 2*(32+4+6) = 84... with
        // INTERNAL_LINK_PAIRS=4: 8*4=32 pairs internal.
        let topo = build_topology(GridSpec::ONE_SLICE, &TopologyOptions::default());
        assert_eq!(topo.builder.link_descs().len(), 2 * (32 + 4 + 6));
        assert_eq!(topo.faulted_cables, 0);
        assert!(topo.bridge.is_none());
    }

    #[test]
    fn two_by_one_grid_uses_ffc_between_slices() {
        let spec = GridSpec {
            slices_x: 2,
            slices_y: 1,
        };
        let topo = build_topology(spec, &TopologyOptions::default());
        // The boundary between slice columns (gx=3 to gx=4) is FFC: the
        // link params carry the off-board rate. Count East links crossing
        // the boundary: 2 package rows.
        let ffc_rate = WireClass::OffBoardFfc.data_rate();
        let crossing = topo
            .builder
            .link_descs()
            .iter()
            .filter(|d| {
                d.dir == Direction::East
                    && spec.coord_of(d.from).x == 3
                    && spec.coord_of(d.to).x == 4
            })
            .count();
        assert_eq!(crossing, 2);
        let _ = ffc_rate;
    }

    #[test]
    fn fault_injection_removes_only_ffc_cables() {
        let spec = GridSpec {
            slices_x: 2,
            slices_y: 2,
        };
        let healthy = build_topology(spec, &TopologyOptions::default());
        let faulty = build_topology(
            spec,
            &TopologyOptions {
                ffc_fault_rate: 1.0,
                ..Default::default()
            },
        );
        // Inter-slice cables: vertical boundary 8 columns × 1 gap = 8,
        // horizontal boundary 4 rows × 1 gap = 4 -> 12 cables.
        assert_eq!(faulty.faulted_cables, 12);
        assert_eq!(
            healthy.builder.link_descs().len() - faulty.builder.link_descs().len(),
            2 * 12
        );
    }

    #[test]
    fn bridge_is_last_node_on_south_edge() {
        let topo = build_topology(
            GridSpec::ONE_SLICE,
            &TopologyOptions {
                bridge: true,
                ..Default::default()
            },
        );
        let bridge = topo.bridge.expect("fitted");
        assert_eq!(bridge, NodeId(16));
        assert_eq!(topo.coords.len(), 17);
        assert_eq!(topo.coords[16].y, 2);
    }
}
