//! A whole Swallow machine: cores + fabric + power tree + bridge.
//!
//! [`Machine`] owns everything `swallow-xcore`, `swallow-noc` and the
//! power models provide, assembled per the [`topology`](crate::topology)
//! rules. It is the engine under the public `swallow` crate's
//! `SwallowSystem` facade.
//!
//! Three engines advance the machine (see [`EngineMode`]):
//!
//! * **Lock-step**: one base clock period per [`Machine::step`], every
//!   subsystem visited every step — the reference semantics.
//! * **Fast-forward** (default): between steps the machine computes the
//!   next instant anything can happen — a runnable core's clock edge, a
//!   timer/divider/event wake, a token arrival on a wire, pending core or
//!   bridge output, the power monitor's cadence — and jumps `now`
//!   straight there, charging the skipped idle energy analytically. All
//!   processing still occurs on the base-clock grid, so results are
//!   identical to lock-step (energy within f64 rounding); only instants
//!   where provably nothing happens are elided.
//! * **Parallel**: conservative-epoch execution. Cores are sharded
//!   (chip-granular, see [`crate::shard`]) across a fixed pool of host
//!   threads; each epoch every shard advances independently up to a
//!   horizon no token emitted inside the epoch could beat (the fabric's
//!   minimum cross-shard token latency, §V.C). A core that *emits*
//!   stops at that instant and a deterministic serial reconciliation
//!   replays the affected grid instants exactly as lock-step would, so
//!   results are bit-identical run to run and equal to lock-step within
//!   f64 association error. See DESIGN.md §3.8.

use crate::ethernet::EthernetBridge;
use crate::metrics::MetricsHub;
use crate::power::{PowerMonitor, DEFAULT_MONITOR_WINDOW};
use crate::resilience::FaultEngine;
use crate::shard::{EpochPool, ShardPlan};
use crate::snapshot;
use crate::topology::{build_topology, GridSpec, TopologyOptions};
use std::fmt;
use swallow_energy::{DvfsTable, EnergyLedger, NodeCategory};
use swallow_faults::{FaultCounters, FaultKind, FaultPlan};
use swallow_isa::{NodeId, Program, ResourceId, Token};
use swallow_noc::{CoreEndpoints, Fabric, LinkDesc, LinkId, TableRouter};
use swallow_sim::{
    ByteReader, ByteWriter, CodecError, Frequency, Time, TimeDelta, TraceEvent, TraceLog,
    TraceSink, Tracer,
};
use swallow_xcore::{Core, CoreConfig, LoadError};

/// Routing strategy selection.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RouterKind {
    /// The paper's vertical-first dimension-order routing (§V.A). Assumes
    /// a fully wired lattice.
    #[default]
    VerticalFirst,
    /// Breadth-first shortest paths — tolerant of faulted cables and
    /// custom wirings.
    ShortestPaths,
}

/// Simulation engine selection.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EngineMode {
    /// Event-driven fast-forward: skip over spans where provably nothing
    /// happens. Cycle-exact with respect to lock-step.
    #[default]
    FastForward,
    /// Advance one base clock period at a time, visiting every subsystem
    /// every step. The reference engine, kept for differential testing.
    LockStep,
    /// Conservative-epoch parallel execution: shard the cores
    /// chip-granularly across `threads` host threads and advance each
    /// shard independently in epochs bounded by the fabric's minimum
    /// cross-shard token latency. `threads == 0` means one thread per
    /// available host CPU. Deterministic and cycle-exact with respect to
    /// lock-step (energy within f64 association error).
    Parallel {
        /// Host worker threads (0 = available parallelism).
        threads: usize,
    },
}

/// Epoch-synchronisation strategy of the parallel engine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EpochMode {
    /// Pairwise watermark negotiation with per-shard-pair lookahead
    /// derived from routed distances (DESIGN.md §3.12): shards advance
    /// through a whole serial window in lock-free rounds and the pool
    /// barrier is paid once per window instead of once per 32 ns epoch.
    #[default]
    Negotiated,
    /// One global conservative epoch per pool dispatch (the PR 2
    /// behaviour) — the bisection escape hatch, also selected by
    /// `SWALLOW_EPOCH_MODE=global`.
    Global,
}

/// The build-time default epoch mode: [`EpochMode::Negotiated`] unless
/// the `SWALLOW_EPOCH_MODE=global` escape hatch is set.
pub fn epoch_mode_default() -> EpochMode {
    match std::env::var("SWALLOW_EPOCH_MODE") {
        Ok(v) if v.eq_ignore_ascii_case("global") => EpochMode::Global,
        _ => EpochMode::Negotiated,
    }
}

/// Machine configuration.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Machine size in slices.
    pub grid: GridSpec,
    /// Initial core clock for every core.
    pub frequency: Frequency,
    /// Routing strategy.
    pub router: RouterKind,
    /// Fit an Ethernet bridge on the south edge.
    pub bridge: bool,
    /// Package-internal link pairs (4 on real hardware; ablation knob).
    pub internal_link_pairs: usize,
    /// Fraction of inter-slice FFC cables that fail at assembly.
    pub ffc_fault_rate: f64,
    /// Seed for cable fault injection.
    pub fault_seed: u64,
    /// Power-monitor cadence.
    pub monitor_window: TimeDelta,
    /// Simulation engine.
    pub engine: EngineMode,
    /// Per-component trace ring capacity; `None` leaves tracing off (the
    /// zero-cost default).
    pub trace_capacity: Option<usize>,
    /// Record per-supply metrics time series on the monitor cadence.
    pub metrics: bool,
    /// Scheduled fault injections (empty = fault-free; an empty plan
    /// costs one comparison per processed edge and perturbs nothing).
    pub faults: FaultPlan,
    /// Per-core predecoded-instruction cache (architecturally invisible;
    /// defaults to on unless `SWALLOW_DECODE_CACHE=off`).
    pub decode_cache: bool,
    /// Parallel-engine epoch synchronisation (architecturally invisible;
    /// defaults to negotiated unless `SWALLOW_EPOCH_MODE=global`).
    pub epoch_mode: EpochMode,
}

impl MachineConfig {
    /// One slice at the stock 500 MHz — the smallest real Swallow unit.
    pub fn one_slice() -> Self {
        MachineConfig {
            grid: GridSpec::ONE_SLICE,
            frequency: Frequency::from_mhz(500),
            router: RouterKind::VerticalFirst,
            bridge: false,
            internal_link_pairs: crate::topology::INTERNAL_LINK_PAIRS,
            ffc_fault_rate: 0.0,
            fault_seed: 0,
            monitor_window: DEFAULT_MONITOR_WINDOW,
            engine: EngineMode::default(),
            trace_capacity: None,
            metrics: false,
            faults: FaultPlan::new(),
            decode_cache: swallow_xcore::decode_cache_default(),
            epoch_mode: epoch_mode_default(),
        }
    }

    /// A grid of `x × y` slices.
    pub fn grid(x: u16, y: u16) -> Self {
        MachineConfig {
            grid: GridSpec {
                slices_x: x,
                slices_y: y,
            },
            ..Self::one_slice()
        }
    }
}

/// The core/bridge side of the fabric boundary.
struct Endpoints {
    cores: Vec<Core>,
    bridge: Option<EthernetBridge>,
    bridge_node: Option<NodeId>,
    /// Injection gate: a core whose local clock is *past* this instant
    /// keeps its pending output invisible to the fabric. The machine sets
    /// the gate to the step instant before every `Fabric::step`, so a
    /// core that ran ahead under the parallel engine and emitted at a
    /// *later* instant cannot have that token injected early — the
    /// replay visits its emission instant separately, exactly as
    /// lock-step would. Serial engines keep every core at `now`, so the
    /// gate never hides anything there.
    tx_gate_ps: u64,
}

impl Endpoints {
    /// True when `node`'s pending output is visible at the current gate.
    fn tx_visible(&self, node: NodeId) -> bool {
        self.cores
            .get(node.raw() as usize)
            .map(|core| core.local_now().as_ps() <= self.tx_gate_ps)
            .unwrap_or(true)
    }
}

impl CoreEndpoints for Endpoints {
    fn has_tx_pending(&self, node: NodeId) -> bool {
        if Some(node) == self.bridge_node {
            return self
                .bridge
                .as_ref()
                .map(|b| b.ep_tx_front().is_some())
                .unwrap_or(false);
        }
        self.cores
            .get(node.raw() as usize)
            .map(|core| core.has_tx_pending())
            .unwrap_or(false)
            && self.tx_visible(node)
    }

    fn for_each_tx_pending(&self, node: NodeId, visit: &mut dyn FnMut(u8)) {
        if Some(node) == self.bridge_node {
            if self
                .bridge
                .as_ref()
                .map(|b| b.ep_tx_front().is_some())
                .unwrap_or(false)
            {
                visit(0);
            }
            return;
        }
        if !self.tx_visible(node) {
            return;
        }
        if let Some(core) = self.cores.get(node.raw() as usize) {
            for chanend in core.tx_pending() {
                visit(chanend);
            }
        }
    }

    fn tx_front(&self, node: NodeId, chanend: u8) -> Option<(ResourceId, Token)> {
        if Some(node) == self.bridge_node {
            return self.bridge.as_ref()?.ep_tx_front();
        }
        self.cores.get(node.raw() as usize)?.tx_front(chanend)
    }

    fn tx_pop(&mut self, node: NodeId, chanend: u8) -> Option<(ResourceId, Token)> {
        if Some(node) == self.bridge_node {
            return self.bridge.as_mut()?.ep_tx_pop();
        }
        self.cores.get_mut(node.raw() as usize)?.tx_pop(chanend)
    }

    fn can_accept(&self, node: NodeId, chanend: u8, n: usize) -> bool {
        if Some(node) == self.bridge_node {
            return true; // host memory backs the bridge
        }
        self.cores
            .get(node.raw() as usize)
            .map(|c| c.can_accept(chanend, n))
            .unwrap_or(false)
    }

    fn deliver(&mut self, node: NodeId, chanend: u8, token: Token) -> bool {
        if Some(node) == self.bridge_node {
            if let Some(b) = self.bridge.as_mut() {
                b.ep_deliver(token);
                return true;
            }
            return false;
        }
        match self.cores.get_mut(node.raw() as usize) {
            Some(core) => core.deliver(chanend, token).is_ok(),
            None => false,
        }
    }
}

/// Lazily built state of the parallel engine: the shard plan, the worker
/// pool and the per-shard energy bookkeeping.
struct ParState {
    /// The thread count the plan was built for (to detect engine swaps).
    threads: usize,
    plan: ShardPlan,
    pool: EpochPool,
    /// Energy accrued by each shard's cores, merged in shard order.
    shard_energy: Vec<EnergyLedger>,
    /// Per-core ledger snapshot at the last settlement, used to compute
    /// epoch deltas without touching the cores' own accounting.
    last_core_ledger: Vec<EnergyLedger>,
    /// `shards × shards` minimum routed pair latency in ps (row-major by
    /// source shard): the negotiation's lookahead matrix. Rebuilt lazily
    /// whenever routes change (see `Machine::refresh_pair_latency`).
    pair_latency_ps: Vec<u64>,
    /// The matrix reflects a stale topology and must be recomputed
    /// before the next negotiated window.
    pair_latency_dirty: bool,
    /// Negotiated windows run and watermark rounds summed (observability).
    windows: u64,
    rounds: u64,
}

/// A fully assembled Swallow machine.
///
/// ```
/// use swallow_board::{Machine, MachineConfig};
/// let machine = Machine::new(MachineConfig::one_slice());
/// assert_eq!(machine.core_count(), 16);
/// ```
pub struct Machine {
    /// The configuration the machine was built from, kept verbatim: a
    /// snapshot embeds it so [`Machine::restore`] can rebuild the same
    /// deterministic topology before overlaying the mutable state.
    config: MachineConfig,
    spec: GridSpec,
    eps: Endpoints,
    fabric: Fabric,
    monitor: PowerMonitor,
    now: Time,
    base_period: TimeDelta,
    faulted_cables: usize,
    engine: EngineMode,
    /// Dense-mode hint maintained by `process_edge`: true when the last
    /// processed edge left some core with a ready thread due at the very
    /// next grid instant, in which case the next-activity scan would
    /// necessarily answer `immediate` and fast-forward degenerates to
    /// lock-step (see `ff_advance`).
    dense: bool,
    /// Conservative lookahead: the fabric's minimum cross-shard token
    /// latency (None on a fabric with no links).
    lookahead: Option<TimeDelta>,
    /// Parallel-engine epoch synchronisation strategy.
    epoch_mode: EpochMode,
    par: Option<ParState>,
    metrics: MetricsHub,
    /// Link descriptions as built — the basis for recomputing routes
    /// around dead links (ids match the live fabric's).
    descs: Vec<LinkDesc>,
    /// Scheduled-fault cursor and recovery bookkeeping.
    faults: FaultEngine,
    /// Machine-level trace sink (fault, reroute and brownout events).
    tracer: Tracer,
    /// Reusable buffer for links the fabric escalated to dead.
    escalated_scratch: Vec<LinkId>,
}

impl Machine {
    /// Builds and wires a machine.
    pub fn new(config: MachineConfig) -> Self {
        let saved_config = config.clone();
        let topo = build_topology(
            config.grid,
            &TopologyOptions {
                bridge: config.bridge,
                internal_link_pairs: config.internal_link_pairs,
                ffc_fault_rate: config.ffc_fault_rate,
                fault_seed: config.fault_seed,
            },
        );
        let router: Box<dyn swallow_noc::Router> = match config.router {
            RouterKind::VerticalFirst => {
                let descs = topo.builder.link_descs();
                let mut table = TableRouter::vertical_first(&topo.coords, descs);
                // The bridge hangs off one reserved South header, so
                // dimension-order routing cannot discover it from any
                // other column (vertical-first steers South immediately,
                // but the only South link below the last lattice row is
                // in the bridge's own column). Alias its routes through
                // the attach node: every core reaches the bridge exactly
                // as it reaches the attach core, plus the one direct hop.
                if let Some(bridge) = topo.bridge {
                    if let Some(attach) = descs.iter().find(|d| d.to == bridge).map(|d| d.from) {
                        let direct: swallow_noc::Candidates = descs
                            .iter()
                            .filter(|d| d.from == attach && d.to == bridge)
                            .map(|d| d.id)
                            .collect();
                        table.alias_dest_via(bridge, attach, direct);
                    }
                }
                Box::new(table)
            }
            RouterKind::ShortestPaths => Box::new(TableRouter::shortest_paths(
                topo.builder.node_count(),
                topo.builder.link_descs(),
            )),
        };
        let bridge_node = topo.bridge;
        let descs = topo.builder.link_descs().to_vec();
        let fabric = topo.builder.build(router);
        let cores: Vec<Core> = config
            .grid
            .nodes()
            .map(|node| {
                let mut cc = CoreConfig::swallow(node);
                cc.frequency = config.frequency;
                let mut core = Core::new(cc);
                core.set_decode_cache(config.decode_cache);
                core
            })
            .collect();
        let base_period = config.frequency.period();
        let lookahead = fabric.min_cross_shard_latency();
        let mut machine = Machine {
            config: saved_config,
            spec: config.grid,
            eps: Endpoints {
                cores,
                bridge: bridge_node.map(EthernetBridge::new),
                bridge_node,
                tx_gate_ps: u64::MAX,
            },
            fabric,
            monitor: PowerMonitor::new(config.grid, config.monitor_window),
            now: Time::ZERO,
            base_period,
            faulted_cables: topo.faulted_cables,
            engine: config.engine,
            dense: false,
            lookahead,
            epoch_mode: config.epoch_mode,
            par: None,
            metrics: MetricsHub::new(config.grid, config.metrics),
            descs,
            faults: FaultEngine::new(config.faults),
            tracer: Tracer::Off,
            escalated_scratch: Vec::new(),
        };
        if let Some(capacity) = config.trace_capacity {
            machine.set_tracing(capacity);
        }
        machine
    }

    // --- structure ---------------------------------------------------------

    /// Number of processor cores.
    pub fn core_count(&self) -> usize {
        self.eps.cores.len()
    }

    /// The machine's slice layout.
    pub fn spec(&self) -> GridSpec {
        self.spec
    }

    /// Inter-slice cables lost to fault injection.
    pub fn faulted_cables(&self) -> usize {
        self.faulted_cables
    }

    /// Access to one core.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a core node.
    pub fn core(&self, node: NodeId) -> &Core {
        &self.eps.cores[node.raw() as usize]
    }

    /// Mutable access to one core.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a core node.
    pub fn core_mut(&mut self, node: NodeId) -> &mut Core {
        &mut self.eps.cores[node.raw() as usize]
    }

    /// All core node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        self.spec.nodes()
    }

    /// The network fabric (statistics, link inspection).
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// The power monitor (rails, ADC traces, losses).
    pub fn monitor(&self) -> &PowerMonitor {
        &self.monitor
    }

    /// Mutable power monitor (to fit ADC boards).
    pub fn monitor_mut(&mut self) -> &mut PowerMonitor {
        &mut self.monitor
    }

    /// The Ethernet bridge, when fitted.
    pub fn bridge(&self) -> Option<&EthernetBridge> {
        self.eps.bridge.as_ref()
    }

    /// Mutable bridge access (to send/receive host data).
    pub fn bridge_mut(&mut self) -> Option<&mut EthernetBridge> {
        self.eps.bridge.as_mut()
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    // --- boot ----------------------------------------------------------------

    /// Loads a program onto one core and starts its thread 0.
    ///
    /// # Errors
    ///
    /// [`LoadError`] if the image exceeds the core's SRAM.
    pub fn load_program(&mut self, node: NodeId, program: &Program) -> Result<(), LoadError> {
        self.core_mut(node).load_program(program)
    }

    /// Loads the same program onto every core.
    ///
    /// # Errors
    ///
    /// [`LoadError`] if the image exceeds a core's SRAM.
    pub fn load_program_all(&mut self, program: &Program) -> Result<(), LoadError> {
        for core in &mut self.eps.cores {
            core.load_program(program)?;
        }
        Ok(())
    }

    /// Changes one core's clock (per-core DFS, §III.B).
    pub fn set_core_frequency(&mut self, node: NodeId, f: Frequency) {
        self.core_mut(node).set_frequency(f);
        self.recompute_base_period();
    }

    /// Re-derives the machine's base clock grid from the fastest core
    /// (after any per-core frequency change, including brownouts).
    fn recompute_base_period(&mut self) {
        self.base_period = self
            .eps
            .cores
            .iter()
            .map(|c| c.frequency().period())
            .min()
            .expect("at least one core");
    }

    // --- execution -------------------------------------------------------------

    /// The active simulation engine.
    pub fn engine(&self) -> EngineMode {
        self.engine
    }

    /// Switches the simulation engine. Safe at any instant: every engine
    /// processes the same grid instants; fast-forward merely skips the
    /// empty ones and the parallel engine batches them into epochs.
    pub fn set_engine(&mut self, engine: EngineMode) {
        self.engine = engine;
    }

    /// Advances the whole machine by one base clock period (the lock-step
    /// primitive; both engines funnel through the same edge processing).
    pub fn step(&mut self) {
        self.now += self.base_period;
        self.process_edge();
    }

    /// Processes the clock edge at `self.now`: runs every core up to
    /// `now`, advances the bridge and fabric, and fires the power monitor
    /// when due.
    fn process_edge(&mut self) {
        // Scheduled faults land first, serially, on the grid instant —
        // before any core runs or token moves — so every engine sees an
        // identical fault timeline (see DESIGN.md §3.10). One branch
        // when the plan is empty.
        if self.faults.pending(self.now) {
            self.apply_due_faults();
        }
        for core in &mut self.eps.cores {
            // Cores may run slower than the base clock; tick on their
            // edges only. `run_until` also stops if the core halts
            // mid-span rather than spinning on a dead core.
            core.run_until(self.now);
        }
        if let Some(bridge) = self.eps.bridge.as_mut() {
            bridge.set_now(self.now);
        }
        // The fabric scan is pure bookkeeping when nothing is in the
        // network and nothing wants to inject; skipping it then is
        // behaviour-preserving in both engines.
        let bridge_pending = self
            .eps
            .bridge
            .as_ref()
            .map(|b| b.tx_backlog() > 0)
            .unwrap_or(false);
        if !self.fabric.is_idle()
            || bridge_pending
            || self.eps.cores.iter().any(|c| c.has_tx_pending())
        {
            // Gate injections at the edge instant: a core that ran ahead
            // under the parallel engine and emitted later must not have
            // its token picked up now (see `Endpoints::tx_gate_ps`).
            self.eps.tx_gate_ps = self.now.as_ps();
            self.fabric.step(self.now, &mut self.eps);
            // A link that exhausted its retry budget during this step is
            // dead: account for it and route around it immediately.
            if self.fabric.has_escalations() {
                self.handle_escalations();
            }
        }
        if self.now >= self.monitor.next_update() {
            self.monitor
                .update(self.now, &mut self.eps.cores, &self.fabric);
            let fc = self.fault_counters();
            self.metrics
                .sample(self.now, &self.eps.cores, &self.fabric, &self.monitor);
            self.metrics.record_faults(fc);
        }
        // Refresh the dense-mode hint: a ready thread due at the very
        // next grid instant pins the next activity to `immediate`, so
        // fast-forward can skip its scan. Early-exits at the first busy
        // core, and goes false the moment the machine drains.
        let immediate = self.now + self.base_period;
        self.dense = self
            .eps
            .cores
            .iter()
            .any(|c| c.ready_threads() > 0 && c.next_tick_at() <= immediate);
    }

    /// The earliest instant at or after `now` when anything can happen:
    /// a core's next interesting tick, a fabric arrival, pending core or
    /// bridge output (immediate), or the monitor cadence. Always finite —
    /// the monitor bounds it — so fast-forward never overshoots an
    /// accounting boundary.
    fn next_activity_at(&self) -> Time {
        let immediate = self.now + self.base_period;
        let mut earliest = self.monitor.next_update();
        // Scheduled faults (and the end of an active brownout) are
        // activity: fast-forward must land on their grid instants.
        if let Some(at) = self.faults.next_at() {
            if at <= immediate {
                return immediate;
            }
            earliest = earliest.min(at);
        }
        for core in &self.eps.cores {
            if core.has_tx_pending() {
                return immediate;
            }
            if let Some(at) = core.next_interesting_at() {
                if at <= immediate {
                    return immediate;
                }
                earliest = earliest.min(at);
            }
        }
        if let Some(at) = self.fabric.next_event_at(self.now) {
            if at <= immediate {
                return immediate;
            }
            earliest = earliest.min(at);
        }
        if let Some(bridge) = self.eps.bridge.as_ref() {
            if bridge.tx_backlog() > 0 {
                let at = bridge.next_tx_at();
                if at <= immediate {
                    return immediate;
                }
                earliest = earliest.min(at);
            }
        }
        earliest
    }

    /// First base-clock grid instant at or after `target` (and strictly
    /// after `now`). Keeping every processed instant on the grid is what
    /// makes fast-forward results identical to lock-step.
    fn grid_align(&self, target: Time) -> Time {
        if target <= self.now + self.base_period {
            return self.now + self.base_period;
        }
        let span = target.since(self.now).as_ps();
        let base = self.base_period.as_ps();
        self.now + TimeDelta::from_ps(span.div_ceil(base) * base)
    }

    /// Fast-forward by one event: jump to the next grid instant where
    /// anything can happen (capped at `deadline`), analytically skipping
    /// the idle span for every core, then process that edge.
    fn ff_advance(&mut self, deadline: Time) {
        // Busy machines tick on every edge: when the dense hint is set,
        // the scan below would answer `immediate`, so this advance is
        // exactly a lock-step edge. Processing an edge is always sound
        // (lock-step processes all of them), so a stale hint can only
        // cost one extra edge, never correctness — and `process_edge`
        // clears it the moment the machine drains.
        if self.dense {
            self.step();
            return;
        }
        let target = self.grid_align(self.next_activity_at().min(deadline));
        if target > self.now + self.base_period {
            for core in &mut self.eps.cores {
                core.skip_idle_until(target);
            }
        }
        self.now = target;
        self.process_edge();
    }

    // --- parallel engine -----------------------------------------------------

    /// Builds (or rebuilds, after a thread-count change) the shard plan,
    /// worker pool and per-shard energy bookkeeping.
    fn ensure_par(&mut self, threads: usize) {
        let rebuild = match &self.par {
            Some(st) => st.threads != threads,
            None => true,
        };
        if !rebuild {
            return;
        }
        // Affinity-aware plan: shard boundaries land on the slow
        // inter-slice cables, which is what keeps the negotiation's
        // pair-latency matrix sparse (long horizons between shards).
        let plan = ShardPlan::affinity(self.spec, threads);
        let pool = EpochPool::new(&plan);
        let shard_energy = vec![EnergyLedger::new(); plan.shard_count()];
        // Seed the snapshots from the cores' current ledgers so shard
        // deltas start at zero even when the engine is enabled mid-run.
        let last_core_ledger = self.eps.cores.iter().map(|c| *c.ledger()).collect();
        self.par = Some(ParState {
            threads,
            plan,
            pool,
            shard_energy,
            last_core_ledger,
            pair_latency_ps: Vec::new(),
            pair_latency_dirty: true,
            windows: 0,
            rounds: 0,
        });
    }

    /// Rebuilds the shard-pair lookahead matrix from the live fabric:
    /// `L[p][s]` is the minimum routed latency from any core of shard `p`
    /// to any distinct core of shard `s` (ps; `u64::MAX` when the shards
    /// are partitioned, which clears the pair from negotiation). Called
    /// lazily when routes changed — a link-down between refreshes only
    /// *lengthens* true latencies, so a stale matrix stays conservative,
    /// and every `set_link_up` path funnels through
    /// `reroute_and_quarantine`, which marks the matrix dirty before any
    /// shortened path can exist.
    fn refresh_pair_latency(&mut self) {
        let Some(st) = self.par.as_mut() else { return };
        if !st.pair_latency_dirty {
            return;
        }
        let node_dist = self.fabric.min_latency_matrix_ps();
        let n = self.fabric.node_count();
        let shards = st.plan.shard_count();
        let mut matrix = vec![u64::MAX; shards * shards];
        for p in 0..shards {
            for s in 0..shards {
                let mut best = u64::MAX;
                for &(alo, ahi) in st.plan.runs(p) {
                    for i in alo..ahi {
                        for &(blo, bhi) in st.plan.runs(s) {
                            for j in blo..bhi {
                                if i != j {
                                    best = best.min(node_dist[i * n + j]);
                                }
                            }
                        }
                    }
                }
                matrix[p * shards + s] = best;
            }
        }
        st.pair_latency_ps = matrix;
        st.pair_latency_dirty = false;
    }

    /// The parallel engine's epoch-synchronisation strategy.
    pub fn epoch_mode(&self) -> EpochMode {
        self.epoch_mode
    }

    /// Switches the epoch-synchronisation strategy (safe at any instant:
    /// both modes commit only instants every engine processes).
    pub fn set_epoch_mode(&mut self, mode: EpochMode) {
        self.epoch_mode = mode;
    }

    /// Negotiation observability: `(windows, rounds)` — pairwise windows
    /// run and watermark rounds summed over shards. Zero under
    /// [`EpochMode::Global`] or the serial engines.
    pub fn negotiation_stats(&self) -> (u64, u64) {
        self.par
            .as_ref()
            .map(|st| (st.windows, st.rounds))
            .unwrap_or((0, 0))
    }

    /// Energy accrued by each shard's cores since the parallel engine was
    /// enabled, in shard order. Empty before the first parallel advance.
    pub fn shard_ledgers(&self) -> Vec<EnergyLedger> {
        self.par
            .as_ref()
            .map(|st| st.shard_energy.clone())
            .unwrap_or_default()
    }

    /// Folds each core's ledger growth since the last settlement into its
    /// shard's ledger. Shards are visited in shard order and cores in node
    /// order, so the f64 association is fixed and the merged totals are
    /// bit-identical run to run. Allocation-free: ledgers are fixed-size
    /// arrays and the snapshot vector is reused in place.
    fn settle_shard_energy(&mut self) {
        let (par, eps) = (&mut self.par, &self.eps);
        let st = par.as_mut().expect("parallel state initialised");
        for (shard, acc) in st.shard_energy.iter_mut().enumerate() {
            for &(lo, hi) in st.plan.runs(shard) {
                for i in lo..hi {
                    let cur = *eps.cores[i].ledger();
                    acc.merge(&cur.delta_since(&st.last_core_ledger[i]));
                    st.last_core_ledger[i] = cur;
                }
            }
        }
    }

    /// One parallel advance, dispatched by [`EpochMode`].
    fn par_advance(&mut self, deadline: Time) {
        match self.epoch_mode {
            EpochMode::Negotiated => self.negotiated_advance(deadline),
            EpochMode::Global => self.global_epoch_advance(deadline),
        }
    }

    /// One pairwise-negotiated advance (DESIGN.md §3.12): pick the next
    /// instant that *must* be processed serially — the power monitor's
    /// cadence, the run deadline, or the edge before a scheduled fault —
    /// and let the shards negotiate their way to it in lock-free
    /// watermark rounds ([`EpochPool::run_negotiated`]). The pool
    /// condvar is paid once per window instead of once per 32 ns epoch,
    /// which is what makes busy-machine scaling monotone in threads.
    ///
    /// Falls back to [`Self::ff_advance`] whenever the window could not
    /// pay for a dispatch or the quiet-machine preconditions fail:
    /// pending core output (must inject on the very next grid instant),
    /// tokens in flight or bridge backlog (the fabric only steps
    /// serially), fewer than two runnable cores, or a window shorter
    /// than two grid periods.
    ///
    /// Correctness: within the window shards interact with nothing
    /// (fabric idle on entry, horizons bound cross-shard reachability,
    /// an emission stops the window for everyone within one round), so
    /// each shard's cores run with lock-step-identical results up to the
    /// committed target; an emission is then replayed serially by
    /// [`Self::reconcile`] exactly as the global-epoch engine does.
    fn negotiated_advance(&mut self, deadline: Time) {
        let immediate = self.now + self.base_period;
        let mut runnable = 0usize;
        let mut any_tx = false;
        for core in &self.eps.cores {
            if core.has_tx_pending() {
                any_tx = true;
                break;
            }
            if core.ready_threads() > 0 {
                runnable += 1;
            }
        }
        let bridge_pending = self
            .eps
            .bridge
            .as_ref()
            .map(|b| b.tx_backlog() > 0)
            .unwrap_or(false);
        if any_tx || runnable < 2 || bridge_pending || !self.fabric.is_idle() {
            self.ff_advance(deadline);
            self.settle_shard_energy();
            return;
        }
        let mut serial_bound = self.grid_align(self.monitor.next_update().min(deadline));
        if let Some(at) = self.faults.next_at() {
            // Stop the window strictly before the fault's grid instant:
            // faults apply serially, before any core crosses them.
            let edge = self.grid_align(at);
            serial_bound = serial_bound.min(Time::from_ps(
                edge.as_ps().saturating_sub(self.base_period.as_ps()),
            ));
        }
        if serial_bound <= immediate {
            self.ff_advance(deadline);
            self.settle_shard_energy();
            return;
        }
        self.refresh_pair_latency();
        let outcome = {
            let st = self.par.as_mut().expect("parallel state initialised");
            st.windows += 1;
            let params = crate::shard::NegotiationParams {
                serial_bound,
                anchor: self.now,
                period: self.base_period,
                pair_latency_ps: &st.pair_latency_ps,
            };
            st.pool.run_negotiated(&mut self.eps.cores, &params)
        };
        {
            let st = self.par.as_mut().expect("parallel state initialised");
            st.rounds += outcome.rounds;
        }
        let mut target = outcome.target;
        if outcome.drained && !outcome.emitted {
            // The machine went quiescent *inside* the window: every core
            // is frozen at its last transition edge (halt, or block on
            // external input that nothing will feed — the fabric was idle
            // on entry and nothing emitted). Commit the latest of those
            // edges — the instant the serial engines detect quiescence —
            // rather than the window bound, so `run_until_quiescent`
            // stops at the same `now` as lock-step.
            let last = self
                .eps
                .cores
                .iter()
                .map(|c| c.local_now())
                .max()
                .unwrap_or(self.now);
            target = self.grid_align(last).min(target);
        }
        debug_assert!(target > self.now && target <= serial_bound);
        if outcome.emitted {
            self.reconcile(target);
        }
        self.now = target;
        // Cores frozen below the commit (externally blocked, or idle the
        // whole window) catch up analytically before the edge runs; the
        // chunk boundaries are the committed targets, which are a pure
        // function of the simulation, so the energy split is
        // thread-count-independent.
        for core in &mut self.eps.cores {
            if !core.has_tx_pending() {
                core.skip_idle_until(self.now);
            }
        }
        self.process_edge();
        self.settle_shard_energy();
    }

    /// One global-epoch parallel advance ([`EpochMode::Global`]): pick a
    /// conservative epoch horizon, run every shard up to it concurrently,
    /// reconcile any core that emitted, then process the horizon edge
    /// serially. Falls back to [`Self::ff_advance`] whenever an epoch
    /// cannot pay for its dispatch (pending output, immediate events, or
    /// fewer than two runnable cores).
    ///
    /// Correctness: the horizon `target` is chosen so that no token can be
    /// *delivered* anywhere strictly before it —
    ///
    /// * tokens already in the network bound it via the fabric's next
    ///   event (aligned up to the grid like every processed instant);
    /// * a token *emitted* during the epoch is sent no earlier than the
    ///   earliest core wake `wake_min`, and needs at least the fabric's
    ///   minimum cross-shard latency `L` (§V.C: 3·Ts + Tt per hop) to
    ///   reach any other core, so `wake_min + L` — aligned *down*, so the
    ///   cap itself cannot admit an in-epoch arrival — also bounds it;
    /// * loopback (below `L`) only returns to the *sending* core, which
    ///   stopped at its emission instant and is replayed by reconcile.
    ///
    /// Within the epoch cores interact with nothing, so each one can run
    /// on its shard thread with lock-step-identical results.
    fn global_epoch_advance(&mut self, deadline: Time) {
        let immediate = self.now + self.base_period;
        let mut runnable = 0usize;
        let mut any_tx = false;
        let mut wake_min: Option<Time> = None;
        for core in &self.eps.cores {
            if core.has_tx_pending() {
                any_tx = true;
                break;
            }
            if core.ready_threads() > 0 {
                runnable += 1;
            }
            if let Some(at) = core.next_interesting_at() {
                wake_min = Some(wake_min.map_or(at, |w| w.min(at)));
            }
        }
        let Some(lookahead) = self.lookahead else {
            self.ff_advance(deadline);
            self.settle_shard_energy();
            return;
        };
        if any_tx || runnable < 2 {
            // Undelivered output must be injected on the very next grid
            // instant (as lock-step would), and a mostly-idle machine is
            // faster on the serial fast-forward path than paying a pool
            // dispatch per epoch.
            self.ff_advance(deadline);
            self.settle_shard_energy();
            return;
        }
        let mut bound = self.monitor.next_update().min(deadline);
        if let Some(at) = self.fabric.next_event_at(self.now) {
            bound = bound.min(at);
        }
        if let Some(bridge) = self.eps.bridge.as_ref() {
            if bridge.tx_backlog() > 0 {
                bound = bound.min(bridge.next_tx_at());
            }
        }
        let mut target = self.grid_align(bound);
        if let Some(w) = wake_min {
            target = target.min((w + lookahead).align_down_to(self.now, self.base_period));
        }
        if let Some(at) = self.faults.next_at() {
            // A fault due at or before the horizon must be applied
            // serially before any core crosses its instant; the
            // fast-forward path lands exactly on the fault's grid edge.
            if self.grid_align(at) <= target {
                self.ff_advance(deadline);
                self.settle_shard_energy();
                return;
            }
        }
        if target <= immediate {
            self.ff_advance(deadline);
            self.settle_shard_energy();
            return;
        }
        {
            let st = self.par.as_ref().expect("parallel state initialised");
            st.pool.run_epoch(&mut self.eps.cores, target);
        }
        let emitted = self.eps.cores.iter().any(|c| c.has_tx_pending());
        if emitted {
            self.reconcile(target);
        } else if self.eps.cores.iter().all(|c| c.watermark_ps() == u64::MAX) {
            // The machine drained inside the epoch (every core halted or
            // blocked on external input, nothing emitted, fabric idle on
            // entry): commit the last transition edge — where lock-step
            // detects quiescence — rather than the epoch horizon.
            let last = self
                .eps
                .cores
                .iter()
                .map(|c| c.local_now())
                .max()
                .unwrap_or(self.now);
            target = self.grid_align(last).min(target);
        }
        self.now = target;
        // Externally-blocked cores freeze inside `run_epoch` (so the
        // quiescence instant stays observable); charge their idle span up
        // to the horizon here, exactly where the epoch would have.
        for core in &mut self.eps.cores {
            if !core.has_tx_pending() {
                core.skip_idle_until(self.now);
            }
        }
        self.process_edge();
        self.settle_shard_energy();
    }

    /// Serial replay of the grid instants inside an epoch where a core
    /// emitted: injects and delivers exactly as lock-step would, on the
    /// same instants, while cores that stayed silent keep their epoch
    /// results untouched. The cursor advances at least one base period per
    /// injection attempt, mirroring lock-step's per-instant retry of
    /// tokens the fabric reports busy.
    fn reconcile(&mut self, target: Time) {
        let mut cursor = self.now;
        loop {
            // Earliest instant below `target` at which anything is due:
            // a stopped core's pending output or a fabric event
            // (including loopback returns created by earlier injections).
            let mut pending: Option<Time> = None;
            for core in &self.eps.cores {
                if core.has_tx_pending() {
                    let at = core.local_now();
                    pending = Some(pending.map_or(at, |p| p.min(at)));
                }
            }
            if let Some(at) = self.fabric.next_event_at(cursor) {
                if at < target {
                    pending = Some(pending.map_or(at, |p| p.min(at)));
                }
            }
            let Some(at) = pending else {
                // Nothing due below the horizon: cores interrupted by the
                // replay resume their isolated epoch run (stopping again
                // on a fresh emission).
                let mut stopped = false;
                for core in &mut self.eps.cores {
                    if core.local_now() < target && !core.has_tx_pending() && core.run_epoch(target)
                    {
                        stopped = true;
                    }
                }
                if !stopped {
                    return;
                }
                continue;
            };
            let t = self.grid_align(at).max(cursor + self.base_period);
            if t >= target {
                // Remaining work lands on the horizon edge itself, which
                // `par_advance` processes next.
                return;
            }
            for core in &mut self.eps.cores {
                if core.local_now() < t {
                    core.run_until(t);
                }
            }
            if let Some(bridge) = self.eps.bridge.as_mut() {
                bridge.set_now(t);
            }
            // The gate hides output from any core that stopped at a
            // *later* emission instant, so this step injects exactly the
            // tokens lock-step would inject at `t` — later emissions are
            // visited by their own loop iterations.
            self.eps.tx_gate_ps = t.as_ps();
            self.fabric.step(t, &mut self.eps);
            cursor = t;
        }
    }

    /// Runs for a fixed span of simulated time.
    pub fn run_for(&mut self, span: TimeDelta) {
        let deadline = self.now + span;
        match self.engine {
            EngineMode::LockStep => {
                while self.now < deadline {
                    self.step();
                }
            }
            EngineMode::FastForward => {
                while self.now < deadline {
                    self.ff_advance(deadline);
                }
            }
            EngineMode::Parallel { threads } => {
                self.ensure_par(threads);
                while self.now < deadline {
                    self.par_advance(deadline);
                }
            }
        }
    }

    /// Runs until every core is quiescent and the network has drained, or
    /// the budget expires. Returns true when quiescent.
    ///
    /// With the fast-forward engine this performs no heap allocation per
    /// step: quiescence is a scan of per-core counters, idle spans are
    /// skipped analytically, and the fabric reuses its injection buffer.
    pub fn run_until_quiescent(&mut self, budget: TimeDelta) -> bool {
        let deadline = self.now + budget;
        if let EngineMode::Parallel { threads } = self.engine {
            self.ensure_par(threads);
        }
        while self.now < deadline {
            if self.is_quiescent() {
                return true;
            }
            match self.engine {
                EngineMode::LockStep => self.step(),
                EngineMode::FastForward => self.ff_advance(deadline),
                EngineMode::Parallel { .. } => self.par_advance(deadline),
            }
        }
        self.is_quiescent()
    }

    /// True when no core can make progress and no token is in flight.
    /// O(cores): every per-core check is a cached counter.
    pub fn is_quiescent(&self) -> bool {
        self.fabric.is_idle()
            && self
                .eps
                .bridge
                .as_ref()
                .map(|b| b.tx_backlog() == 0)
                .unwrap_or(true)
            && self
                .eps
                .cores
                .iter()
                .all(|c| c.is_quiescent() && !c.has_tx_pending())
    }

    // --- faults & resilience -------------------------------------------------

    /// Applies every scheduled fault due at or before `now`, in plan
    /// order, then recomputes routes once if any link topology changed.
    /// Events naming an out-of-range link or core are ignored (the plan
    /// may have been written for a larger machine).
    fn apply_due_faults(&mut self) {
        // The end of a brownout is itself a due instant: restore the
        // saved clocks/models before applying anything newly scheduled.
        if self.faults.derated && self.now >= self.faults.derate_end {
            self.restore_brownout();
        }
        let mut reroute = false;
        while let Some(ev) = self.faults.pop_due(self.now) {
            match ev.kind {
                FaultKind::LinkDown(link) => {
                    if self.fabric.set_link_down(link) {
                        self.faults.counters.link_downs += 1;
                        self.tracer.emit(
                            self.now,
                            TraceEvent::LinkFault {
                                link: link.raw(),
                                up: false,
                            },
                        );
                        reroute = true;
                    }
                }
                FaultKind::LinkUp(link) => {
                    if self.fabric.set_link_up(link) {
                        self.faults.counters.link_ups += 1;
                        self.tracer.emit(
                            self.now,
                            TraceEvent::LinkFault {
                                link: link.raw(),
                                up: true,
                            },
                        );
                        // Restored capacity: recompute so routes may use
                        // it again. Cores already quarantined stay dead —
                        // a rejoined island does not resurrect them.
                        reroute = true;
                    }
                }
                FaultKind::LinkCorrupt { link, until } => {
                    self.fabric.set_link_corrupt_until(link, until);
                }
                FaultKind::LinkDrop { link, until } => {
                    self.fabric.set_link_drop_until(link, until);
                }
                FaultKind::CoreStall { core, until } => {
                    if let Some(c) = self.eps.cores.get_mut(core.raw() as usize) {
                        c.fault_stall_until(until);
                        self.faults.counters.core_stalls += 1;
                        self.tracer.emit(
                            self.now,
                            TraceEvent::CoreFault {
                                core: core.raw(),
                                kind: "stall",
                            },
                        );
                    }
                }
                FaultKind::CoreKill(core) => {
                    if let Some(c) = self.eps.cores.get_mut(core.raw() as usize) {
                        if !c.is_halted() {
                            c.fault_kill();
                            self.faults.counters.core_kills += 1;
                            self.tracer.emit(
                                self.now,
                                TraceEvent::CoreFault {
                                    core: core.raw(),
                                    kind: "kill",
                                },
                            );
                        }
                    }
                }
                FaultKind::Brownout { milli, until } => {
                    self.start_brownout(milli, until);
                }
            }
        }
        if reroute {
            self.reroute_and_quarantine();
        }
    }

    /// Enters a supply brownout: every core's clock is derated to
    /// `milli`/1000 of its current frequency and its power model moved
    /// to the DVFS voltage for the derated clock (a browned-out supply
    /// forces the lower operating point, §III.B). Clocks and models are
    /// saved and restored bit-exactly at `until`. An overlapping
    /// brownout only extends the window — derating twice would compound.
    fn start_brownout(&mut self, milli: u32, until: Time) {
        if self.faults.derated {
            self.faults.derate_end = self.faults.derate_end.max(until);
            return;
        }
        self.faults.counters.brownouts += 1;
        self.faults.derated = true;
        self.faults.derate_end = until;
        self.faults.nominal.clear();
        self.faults.nominal_power.clear();
        let table = DvfsTable::swallow();
        let mut derated_hz = 0u64;
        for core in &mut self.eps.cores {
            let nominal = core.frequency();
            self.faults.nominal.push(nominal);
            self.faults.nominal_power.push(core.power_model());
            let hz = (nominal.as_hz().saturating_mul(milli as u64) / 1000).max(1);
            let derated = Frequency::from_hz(hz);
            derated_hz = derated.as_hz();
            core.set_frequency(derated);
            core.set_power_model(core.power_model().at_voltage(table.voltage_at(derated)));
        }
        self.recompute_base_period();
        self.tracer.emit(
            self.now,
            TraceEvent::Brownout {
                active: true,
                hz: derated_hz,
            },
        );
    }

    /// Leaves a brownout: restores every core's saved clock and power
    /// model exactly.
    fn restore_brownout(&mut self) {
        for (i, core) in self.eps.cores.iter_mut().enumerate() {
            core.set_frequency(self.faults.nominal[i]);
            core.set_power_model(self.faults.nominal_power[i]);
        }
        self.faults.derated = false;
        self.recompute_base_period();
        let hz = self
            .eps
            .cores
            .first()
            .map(|c| c.frequency().as_hz())
            .unwrap_or(0);
        self.tracer
            .emit(self.now, TraceEvent::Brownout { active: false, hz });
    }

    /// Accounts for links the fabric just escalated to dead (retry
    /// budget exhausted) and routes around them.
    fn handle_escalations(&mut self) {
        let mut escalated = std::mem::take(&mut self.escalated_scratch);
        self.fabric.take_escalated(&mut escalated);
        for link in escalated.drain(..) {
            self.faults.counters.link_downs += 1;
            self.tracer.emit(
                self.now,
                TraceEvent::LinkFault {
                    link: link.raw(),
                    up: false,
                },
            );
        }
        self.escalated_scratch = escalated;
        self.reroute_and_quarantine();
    }

    /// Rebuilds the routing table over the surviving links and
    /// quarantines cores the machine's majority can no longer exchange
    /// tokens with. Recovery routing is always a recomputed
    /// shortest-path table, whatever [`RouterKind`] the machine was
    /// built with — the dimension-order router assumes a fully wired
    /// lattice, which no longer holds ("new routing algorithms can
    /// simply be programmed", §V.A).
    fn reroute_and_quarantine(&mut self) {
        let alive: Vec<LinkDesc> = self
            .descs
            .iter()
            .copied()
            .filter(|d| !self.fabric.link_is_down(d.id))
            .collect();
        let dead = (self.descs.len() - alive.len()) as u32;
        let n = self.fabric.node_count();
        self.fabric
            .set_router(Box::new(TableRouter::shortest_paths(n, &alive)));
        self.faults.counters.reroutes += 1;
        self.tracer
            .emit(self.now, TraceEvent::RouteRecompute { dead_links: dead });
        // The negotiation's lookahead matrix mirrors the routed topology;
        // recompute it before the next window (lazily — fault storms may
        // reroute many times between windows).
        if let Some(st) = self.par.as_mut() {
            st.pair_latency_dirty = true;
        }
        let keep = crate::resilience::largest_mutual_component(n, &alive);
        for (i, core) in self.eps.cores.iter_mut().enumerate() {
            if !keep.get(i).copied().unwrap_or(false) && !core.is_halted() {
                core.fault_kill();
                self.faults.counters.quarantined_cores += 1;
                self.tracer.emit(
                    self.now,
                    TraceEvent::CoreFault {
                        core: i as u16,
                        kind: "quarantine",
                    },
                );
            }
        }
    }

    /// Cumulative fault/resilience counters: the board-side events
    /// (downs, kills, brownouts, reroutes, quarantines) merged with the
    /// fabric's live retry/drop/delivery totals.
    pub fn fault_counters(&self) -> FaultCounters {
        let mut c = self.faults.counters;
        c.retransmits = self.fabric.total_retransmits();
        c.dropped_tokens = self.fabric.total_dropped_tokens();
        c.delivered_tokens = self.fabric.delivered_data_tokens();
        c
    }

    /// The machine's links as built (ids match the live fabric) — the
    /// basis for writing targeted fault plans.
    pub fn link_descs(&self) -> &[LinkDesc] {
        &self.descs
    }

    // --- accounting ---------------------------------------------------------------

    /// Total instructions retired machine-wide.
    pub fn total_instret(&self) -> u64 {
        self.eps.cores.iter().map(|c| c.instret()).sum()
    }

    /// The full energy ledger of one node: core-level categories plus the
    /// node's share of link, conversion-loss and support energy.
    pub fn node_ledger(&self, node: NodeId) -> EnergyLedger {
        let mut ledger = *self.core(node).ledger();
        ledger.charge(NodeCategory::Network, self.fabric.energy_from_node(node));
        let slice = self.spec.slice_of(node);
        let per_node = 1.0 / crate::topology::CORES_PER_SLICE as f64;
        ledger.charge(
            NodeCategory::Supply,
            self.monitor.loss_energy(slice) * per_node,
        );
        ledger.charge(
            NodeCategory::Other,
            self.monitor.support_energy(slice) * per_node,
        );
        ledger
    }

    /// The machine-wide energy ledger.
    pub fn machine_ledger(&self) -> EnergyLedger {
        self.nodes().map(|n| self.node_ledger(n)).sum()
    }

    // --- observability ------------------------------------------------------

    /// Attaches a trace ring of `capacity` records to every core, the
    /// fabric and the power monitor. Each component owns its sink, so
    /// under the parallel engine a core's tracer travels with it onto its
    /// shard thread and per-component record order stays deterministic —
    /// the rings are merged in fixed component order by
    /// [`Machine::collect_trace`], mirroring how shard `EnergyLedger`
    /// deltas are settled in fixed shard order.
    pub fn set_tracing(&mut self, capacity: usize) {
        for core in &mut self.eps.cores {
            core.set_tracer(Tracer::ring_with_capacity(capacity));
        }
        self.fabric.set_tracer(Tracer::ring_with_capacity(capacity));
        self.monitor
            .set_tracer(Tracer::ring_with_capacity(capacity));
        self.tracer = Tracer::ring_with_capacity(capacity);
    }

    /// Detaches every trace sink (back to the zero-cost default).
    pub fn clear_tracing(&mut self) {
        for core in &mut self.eps.cores {
            core.set_tracer(Tracer::Off);
        }
        self.fabric.set_tracer(Tracer::Off);
        self.monitor.set_tracer(Tracer::Off);
        self.tracer = Tracer::Off;
    }

    /// True when trace rings are attached.
    pub fn tracing_enabled(&self) -> bool {
        self.eps
            .cores
            .first()
            .map(|c| c.tracer().is_enabled())
            .unwrap_or(false)
    }

    /// Merges every component's trace ring into one chronological
    /// [`TraceLog`]: cores in node order, then the fabric, then the power
    /// monitor, then the machine's own fault/resilience ring,
    /// stable-sorted by time — deterministic run to run.
    pub fn collect_trace(&self) -> TraceLog {
        let mut log = TraceLog::new();
        for core in &self.eps.cores {
            if let Some(ring) = core.tracer().ring() {
                log.absorb(ring);
            }
        }
        if let Some(ring) = self.fabric.tracer().ring() {
            log.absorb(ring);
        }
        if let Some(ring) = self.monitor.tracer().ring() {
            log.absorb(ring);
        }
        if let Some(ring) = self.tracer.ring() {
            log.absorb(ring);
        }
        log.finish();
        log
    }

    /// The metrics hub (per-supply energy time series).
    pub fn metrics(&self) -> &MetricsHub {
        &self.metrics
    }

    /// Mutable metrics hub (to enable sampling).
    pub fn metrics_mut(&mut self) -> &mut MetricsHub {
        &mut self.metrics
    }

    /// Closes the metrics time series at the current instant: forces a
    /// final (possibly partial-window) power-monitor update so loss and
    /// support energy are integrated up to `now`, then records the
    /// residual rows. After this, the hub's integrated energy equals
    /// [`Machine::machine_ledger`]'s total up to f64 association. Call
    /// once at the end of a run, before exporting.
    pub fn flush_metrics(&mut self) {
        if !self.metrics.is_enabled() {
            return;
        }
        self.monitor
            .update(self.now, &mut self.eps.cores, &self.fabric);
        let fc = self.fault_counters();
        self.metrics
            .sample(self.now, &self.eps.cores, &self.fabric, &self.monitor);
        self.metrics.record_faults(fc);
    }

    /// Read access to the raw component triple the metrics hub samples
    /// (cores in node order, fabric, monitor) — test hook.
    pub fn parts(&self) -> (&[Core], &Fabric, &PowerMonitor) {
        (&self.eps.cores, &self.fabric, &self.monitor)
    }

    /// The configuration the machine was built from.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    // --- snapshot / restore -------------------------------------------------

    /// Serializes the complete architectural state of the machine into
    /// the versioned `SWLWSNAP` binary format (DESIGN.md §3.13): a
    /// magic-plus-version header followed by checksummed sections —
    /// CONF (the build configuration, fault plan included), MACH
    /// (clock, engine), one CORE per core, FABR (links, in-flight
    /// tokens, sticky flows), BRDG (the Ethernet bridge, when fitted),
    /// PMON, METR and FALT in that order.
    ///
    /// Call between engine advances (any instant `run_for` or
    /// `run_until_quiescent` can stop at). Trace rings and ADC boards
    /// are observational and not serialized; everything architectural —
    /// including mid-flight fault windows and an active brownout — is.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.raw(&SNAPSHOT_MAGIC);
        w.u32(SNAPSHOT_VERSION);
        w.begin_section(*b"CONF");
        write_config(&mut w, &self.config);
        w.end_section();
        w.begin_section(*b"MACH");
        snapshot::write_time(&mut w, self.now);
        w.u64(self.faulted_cables as u64);
        match self.engine {
            EngineMode::FastForward => {
                w.u8(0);
                w.u64(0);
            }
            EngineMode::LockStep => {
                w.u8(1);
                w.u64(0);
            }
            EngineMode::Parallel { threads } => {
                w.u8(2);
                w.u64(threads as u64);
            }
        }
        w.u8(match self.epoch_mode {
            EpochMode::Negotiated => 0,
            EpochMode::Global => 1,
        });
        w.end_section();
        for core in &self.eps.cores {
            w.begin_section(*b"CORE");
            core.encode_state(&mut w);
            w.end_section();
        }
        w.begin_section(*b"FABR");
        self.fabric.encode_state(&mut w);
        w.end_section();
        w.begin_section(*b"BRDG");
        match &self.eps.bridge {
            Some(bridge) => {
                w.bool(true);
                bridge.encode_state(&mut w);
            }
            None => w.bool(false),
        }
        w.end_section();
        w.begin_section(*b"PMON");
        self.monitor.encode_state(&mut w);
        w.end_section();
        w.begin_section(*b"METR");
        self.metrics.encode_state(&mut w);
        w.end_section();
        w.begin_section(*b"FALT");
        self.faults.encode_state(&mut w);
        w.end_section();
        w.finish()
    }

    /// Rebuilds a machine from a [`Machine::snapshot`] image. The
    /// continuation is bit-identical to the original run under every
    /// engine: the embedded configuration deterministically rebuilds the
    /// topology (assembly cable faults included), the sections overlay
    /// every piece of mutable architectural state, and derived state —
    /// base period, recovery routing, decode caches, the fast-forward
    /// dense hint — is recomputed, never trusted from the image.
    ///
    /// # Errors
    ///
    /// Strict-reject decoding: any truncation, checksum mismatch,
    /// unknown version or internally inconsistent field yields a
    /// [`CodecError`] (never a panic, never a half-restored machine).
    pub fn restore(bytes: &[u8]) -> Result<Machine, CodecError> {
        let mut r = ByteReader::new(bytes);
        if r.take(SNAPSHOT_MAGIC.len())? != SNAPSHOT_MAGIC {
            return Err(CodecError::BadMagic);
        }
        let version = r.u32()?;
        if version != SNAPSHOT_VERSION {
            return Err(CodecError::BadVersion { found: version });
        }
        let mut conf = r.section(*b"CONF")?;
        let config = read_config(&mut conf)?;
        conf.expect_end()?;
        let mut machine = Machine::new(config);
        let mut mach = r.section(*b"MACH")?;
        machine.now = snapshot::read_time(&mut mach)?;
        if mach.u64()? != machine.faulted_cables as u64 {
            return Err(CodecError::Invalid("assembly-fault cable count mismatch"));
        }
        let engine_tag = mach.u8()?;
        let threads = mach.u64()?;
        machine.engine = match engine_tag {
            0 => EngineMode::FastForward,
            1 => EngineMode::LockStep,
            2 => EngineMode::Parallel {
                threads: usize::try_from(threads)
                    .map_err(|_| CodecError::Invalid("thread count out of range"))?,
            },
            _ => return Err(CodecError::Invalid("unknown engine tag")),
        };
        machine.epoch_mode = match mach.u8()? {
            0 => EpochMode::Negotiated,
            1 => EpochMode::Global,
            _ => return Err(CodecError::Invalid("unknown epoch-mode tag")),
        };
        mach.expect_end()?;
        for core in &mut machine.eps.cores {
            let mut sec = r.section(*b"CORE")?;
            core.restore_state(&mut sec)?;
            sec.expect_end()?;
        }
        let mut fabr = r.section(*b"FABR")?;
        machine.fabric.restore_state(&mut fabr)?;
        fabr.expect_end()?;
        let mut brdg = r.section(*b"BRDG")?;
        match (machine.eps.bridge.as_mut(), brdg.bool()?) {
            (Some(bridge), true) => bridge.restore_state(&mut brdg)?,
            (None, false) => {}
            _ => return Err(CodecError::Invalid("bridge presence mismatch")),
        }
        brdg.expect_end()?;
        let mut pmon = r.section(*b"PMON")?;
        machine.monitor.restore_state(&mut pmon)?;
        pmon.expect_end()?;
        let mut metr = r.section(*b"METR")?;
        machine.metrics.restore_state(&mut metr)?;
        metr.expect_end()?;
        let mut falt = r.section(*b"FALT")?;
        machine.faults.restore_state(&mut falt)?;
        falt.expect_end()?;
        r.expect_end()?;
        if machine.faults.derated && machine.faults.nominal.len() != machine.core_count() {
            return Err(CodecError::Invalid("brownout state core count mismatch"));
        }
        // Derived state, recomputed from what was just restored. The
        // grid follows the (possibly derated) core clocks; recovery
        // routing is always a shortest-path table over the surviving
        // links, exactly as `reroute_and_quarantine` left it — the
        // original router kind only persists on machines that never
        // rerouted.
        machine.recompute_base_period();
        if machine.faults.counters.reroutes > 0 {
            let alive: Vec<LinkDesc> = machine
                .descs
                .iter()
                .copied()
                .filter(|d| !machine.fabric.link_is_down(d.id))
                .collect();
            let n = machine.fabric.node_count();
            machine
                .fabric
                .set_router(Box::new(TableRouter::shortest_paths(n, &alive)));
        }
        let immediate = machine.now + machine.base_period;
        machine.dense = machine
            .eps
            .cores
            .iter()
            .any(|c| c.ready_threads() > 0 && c.next_tick_at() <= immediate);
        Ok(machine)
    }
}

/// Leading bytes of every snapshot image.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"SWLWSNAP";
/// Format version written (and the only one accepted) by this build.
/// Version 2 extended the BRDG section with the bridge's machine tag,
/// ingress capacity, traffic counters and reassembled frame queue.
pub const SNAPSHOT_VERSION: u32 = 2;

fn write_fault_kind(w: &mut ByteWriter, kind: FaultKind) {
    match kind {
        FaultKind::LinkDown(link) => {
            w.u8(0);
            w.u32(link.raw());
        }
        FaultKind::LinkUp(link) => {
            w.u8(1);
            w.u32(link.raw());
        }
        FaultKind::LinkCorrupt { link, until } => {
            w.u8(2);
            w.u32(link.raw());
            snapshot::write_time(w, until);
        }
        FaultKind::LinkDrop { link, until } => {
            w.u8(3);
            w.u32(link.raw());
            snapshot::write_time(w, until);
        }
        FaultKind::CoreStall { core, until } => {
            w.u8(4);
            w.u16(core.raw());
            snapshot::write_time(w, until);
        }
        FaultKind::CoreKill(core) => {
            w.u8(5);
            w.u16(core.raw());
        }
        FaultKind::Brownout { milli, until } => {
            w.u8(6);
            w.u32(milli);
            snapshot::write_time(w, until);
        }
    }
}

fn read_fault_kind(r: &mut ByteReader<'_>) -> Result<FaultKind, CodecError> {
    Ok(match r.u8()? {
        0 => FaultKind::LinkDown(LinkId::from_raw(r.u32()?)),
        1 => FaultKind::LinkUp(LinkId::from_raw(r.u32()?)),
        2 => FaultKind::LinkCorrupt {
            link: LinkId::from_raw(r.u32()?),
            until: snapshot::read_time(r)?,
        },
        3 => FaultKind::LinkDrop {
            link: LinkId::from_raw(r.u32()?),
            until: snapshot::read_time(r)?,
        },
        4 => FaultKind::CoreStall {
            core: NodeId(r.u16()?),
            until: snapshot::read_time(r)?,
        },
        5 => FaultKind::CoreKill(NodeId(r.u16()?)),
        6 => {
            let milli = r.u32()?;
            if !(1..=1000).contains(&milli) {
                return Err(CodecError::Invalid("brownout scale out of range"));
            }
            FaultKind::Brownout {
                milli,
                until: snapshot::read_time(r)?,
            }
        }
        _ => return Err(CodecError::Invalid("unknown fault-kind tag")),
    })
}

fn write_config(w: &mut ByteWriter, c: &MachineConfig) {
    w.u16(c.grid.slices_x);
    w.u16(c.grid.slices_y);
    w.u64(c.frequency.as_hz());
    w.u8(match c.router {
        RouterKind::VerticalFirst => 0,
        RouterKind::ShortestPaths => 1,
    });
    w.bool(c.bridge);
    w.u32(c.internal_link_pairs as u32);
    w.f64_bits(c.ffc_fault_rate);
    w.u64(c.fault_seed);
    snapshot::write_delta(w, c.monitor_window);
    match c.engine {
        EngineMode::FastForward => {
            w.u8(0);
            w.u64(0);
        }
        EngineMode::LockStep => {
            w.u8(1);
            w.u64(0);
        }
        EngineMode::Parallel { threads } => {
            w.u8(2);
            w.u64(threads as u64);
        }
    }
    match c.trace_capacity {
        None => w.u8(0),
        Some(n) => {
            w.u8(1);
            w.u64(n as u64);
        }
    }
    w.bool(c.metrics);
    w.bool(c.decode_cache);
    w.u8(match c.epoch_mode {
        EpochMode::Negotiated => 0,
        EpochMode::Global => 1,
    });
    w.u64(c.faults.len() as u64);
    for ev in c.faults.events() {
        snapshot::write_time(w, ev.at);
        write_fault_kind(w, ev.kind);
    }
}

fn read_config(r: &mut ByteReader<'_>) -> Result<MachineConfig, CodecError> {
    let slices_x = r.u16()?;
    let slices_y = r.u16()?;
    let slice_count = u32::from(slices_x) * u32::from(slices_y);
    if !(1..=4096).contains(&slice_count) {
        return Err(CodecError::Invalid("grid size out of range"));
    }
    let hz = r.u64()?;
    if hz == 0 {
        return Err(CodecError::Invalid("zero base frequency"));
    }
    let router = match r.u8()? {
        0 => RouterKind::VerticalFirst,
        1 => RouterKind::ShortestPaths,
        _ => return Err(CodecError::Invalid("unknown router tag")),
    };
    let bridge = r.bool()?;
    let internal_link_pairs = r.u32()?;
    if !(1..=32).contains(&internal_link_pairs) {
        return Err(CodecError::Invalid("internal link pairs out of range"));
    }
    let ffc_fault_rate = r.f64_bits()?;
    if !ffc_fault_rate.is_finite() || !(0.0..=1.0).contains(&ffc_fault_rate) {
        return Err(CodecError::Invalid("cable fault rate out of range"));
    }
    let fault_seed = r.u64()?;
    let monitor_window = snapshot::read_delta(r)?;
    if monitor_window.as_ps() == 0 {
        return Err(CodecError::Invalid("zero monitor window"));
    }
    let engine_tag = r.u8()?;
    let threads = r.u64()?;
    let engine = match engine_tag {
        0 => EngineMode::FastForward,
        1 => EngineMode::LockStep,
        2 => EngineMode::Parallel {
            threads: usize::try_from(threads)
                .map_err(|_| CodecError::Invalid("thread count out of range"))?,
        },
        _ => return Err(CodecError::Invalid("unknown engine tag")),
    };
    let trace_capacity = match r.u8()? {
        0 => None,
        1 => {
            let n = r.u64()?;
            if n > 1 << 24 {
                return Err(CodecError::Invalid("trace capacity out of range"));
            }
            Some(n as usize)
        }
        _ => return Err(CodecError::Invalid("unknown trace-capacity tag")),
    };
    let metrics = r.bool()?;
    let decode_cache = r.bool()?;
    let epoch_mode = match r.u8()? {
        0 => EpochMode::Negotiated,
        1 => EpochMode::Global,
        _ => return Err(CodecError::Invalid("unknown epoch-mode tag")),
    };
    let mut faults = FaultPlan::new();
    for _ in 0..r.len_prefixed(13)? {
        let at = snapshot::read_time(r)?;
        let kind = read_fault_kind(r)?;
        faults.push(at, kind);
    }
    Ok(MachineConfig {
        grid: GridSpec { slices_x, slices_y },
        frequency: Frequency::from_hz(hz),
        router,
        bridge,
        internal_link_pairs: internal_link_pairs as usize,
        ffc_fault_rate,
        fault_seed,
        monitor_window,
        engine,
        trace_capacity,
        metrics,
        faults,
        decode_cache,
        epoch_mode,
    })
}

impl fmt::Debug for Machine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("cores", &self.core_count())
            .field("slices", &self.spec.slice_count())
            .field("now", &self.now)
            .field("links", &self.fabric.link_count())
            .finish()
    }
}
