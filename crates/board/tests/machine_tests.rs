//! Whole-machine tests: programs running on real cores, communicating
//! across the lattice through the token-level fabric, with the power tree
//! watching.

use swallow_board::{EngineMode, EpochMode, Machine, MachineConfig, RouterKind};
use swallow_isa::{Assembler, NodeId, Program};
use swallow_sim::{Frequency, TimeDelta};

fn asm(src: &str) -> Program {
    Assembler::new().assemble(src).expect("assembles")
}

/// A program that sends one word to chanend 0 of `dest_node` and exits.
fn sender(dest_node: u16, value: u32) -> Program {
    asm(&format!(
        "
            getr  r0, chanend
            ldc   r1, {dest_node}
            shl   r1, r1, 16
            add   r1, r1, 2        # chanend type code, index 0
            setd  r0, r1
            ldc   r2, {value}
            out   r0, r2
            outct r0, end
            freet
        "
    ))
}

/// A program that receives one word on its first chanend and prints it.
fn receiver() -> Program {
    asm("
        getr  r0, chanend
        in    r1, r0
        chkct r0, end
        print r1
        freet
    ")
}

#[test]
fn one_slice_boots_sixteen_cores() {
    let mut machine = Machine::new(MachineConfig::one_slice());
    assert_eq!(machine.core_count(), 16);
    machine
        .load_program_all(&asm("ldc r0, 1\n print r0\n freet"))
        .expect("fits");
    assert!(machine.run_until_quiescent(TimeDelta::from_us(10)));
    for node in machine.nodes().collect::<Vec<_>>() {
        assert_eq!(machine.core(node).output(), "1\n");
    }
}

#[test]
fn in_package_word_transfer() {
    // Nodes 0 (vertical layer) and 1 (horizontal layer) share a package.
    let mut machine = Machine::new(MachineConfig::one_slice());
    machine
        .load_program(NodeId(0), &sender(1, 777))
        .expect("fits");
    machine.load_program(NodeId(1), &receiver()).expect("fits");
    assert!(machine.run_until_quiescent(TimeDelta::from_us(50)));
    assert_eq!(machine.core(NodeId(1)).output(), "777\n");
    assert_eq!(machine.fabric().unroutable_tokens(), 0);
}

#[test]
fn vertical_neighbour_transfer_uses_board_wire() {
    // Package (0,0) V-core is node 0; package (0,1) V-core is node 8.
    let mut machine = Machine::new(MachineConfig::one_slice());
    machine
        .load_program(NodeId(0), &sender(8, 4242))
        .expect("fits");
    machine.load_program(NodeId(8), &receiver()).expect("fits");
    assert!(machine.run_until_quiescent(TimeDelta::from_us(50)));
    assert_eq!(machine.core(NodeId(8)).output(), "4242\n");
    // The South board link between them carried the packet.
    let south_used = machine
        .fabric()
        .link_stats()
        .any(|s| s.from == NodeId(0) && s.to == NodeId(8) && s.data_tokens == 4);
    assert!(south_used);
}

#[test]
fn cross_layer_cross_column_route() {
    // H-layer node of package (0,0) is node 1; H-layer of (3,1) is node
    // 15: a route needing horizontal travel and layer transitions.
    let mut machine = Machine::new(MachineConfig::one_slice());
    machine
        .load_program(NodeId(0), &sender(15, 31337))
        .expect("fits");
    machine.load_program(NodeId(15), &receiver()).expect("fits");
    assert!(machine.run_until_quiescent(TimeDelta::from_us(100)));
    assert_eq!(machine.core(NodeId(15)).output(), "31337\n");
    assert_eq!(machine.fabric().unroutable_tokens(), 0);
}

#[test]
fn every_core_sends_to_node_zero() {
    // A 15-to-1 gather: every non-zero core sends its node id; node 0
    // sums 15 words from its single chanend (senders share the route
    // serially because each closes with END).
    let mut machine = Machine::new(MachineConfig::one_slice());
    let gather = asm("
            getr  r0, chanend
            ldc   r3, 15          # messages expected
            ldc   r4, 0           # sum
        gl:
            in    r1, r0
            chkct r0, end
            add   r4, r4, r1
            sub   r3, r3, 1
            bt    r3, gl
            print r4
            freet
    ");
    machine.load_program(NodeId(0), &gather).expect("fits");
    for n in 1..16u16 {
        machine
            .load_program(NodeId(n), &sender(0, n as u32))
            .expect("fits");
    }
    assert!(machine.run_until_quiescent(TimeDelta::from_ms(2)));
    // 1 + 2 + ... + 15 = 120.
    assert_eq!(machine.core(NodeId(0)).output(), "120\n");
}

#[test]
fn latency_shapes_follow_the_paper() {
    // §V.C: core-local fastest, in-package next, cross-package slowest.
    // Measure one-way delivery time of a single word by watching for the
    // receiver's output.
    let one_way = |src: u16, dst: u16| -> TimeDelta {
        let mut machine = Machine::new(MachineConfig::one_slice());
        if src == dst {
            // Core-local: two chanends on one core, two threads.
            machine
                .load_program(
                    NodeId(src),
                    &asm("
                        getr  r0, chanend
                        getr  r1, chanend
                        setd  r0, r1
                        ldap  r2, rx
                        tspawn r3, r2, r1
                        ldc   r4, 9
                        out   r0, r4
                        freet
                    rx:
                        in    r5, r0
                        print r5
                        freet
                    "),
                )
                .expect("fits");
        } else {
            machine
                .load_program(NodeId(src), &sender(dst, 9))
                .expect("fits");
            machine
                .load_program(NodeId(dst), &receiver())
                .expect("fits");
        }
        let deadline = TimeDelta::from_us(100);
        while machine.now() < swallow_sim::Time::ZERO + deadline {
            machine.step();
            if !machine.core(NodeId(dst)).output().is_empty() {
                break;
            }
        }
        assert_eq!(machine.core(NodeId(dst)).output(), "9\n", "{src}->{dst}");
        machine.now().since(swallow_sim::Time::ZERO)
    };
    let local = one_way(0, 0);
    let in_package = one_way(0, 1);
    let cross_package = one_way(0, 8);
    assert!(local < in_package, "{local} !< {in_package}");
    assert!(
        in_package < cross_package,
        "{in_package} !< {cross_package}"
    );
}

#[test]
fn power_monitor_reads_idle_slice() {
    let mut machine = Machine::new(MachineConfig::one_slice());
    // No programs: cores are quiescent but leak static+clock power only
    // if ticked; idle cores tick at their clock.
    machine.run_for(TimeDelta::from_us(10));
    let load = machine.monitor().slice_load_power(0).as_watts();
    // 16 cores × 113 mW idle + 160 mW support = 1.97 W.
    assert!((load - 1.97).abs() < 0.1, "slice load = {load} W");
    let input = machine.monitor().machine_input_power().as_watts();
    assert!(input > load, "conversion losses must appear at the input");
    assert!((2.0..3.2).contains(&input), "input = {input} W");
}

#[test]
fn program_measures_its_own_power() {
    // The Swallow self-measurement feature (§II): a program reads its own
    // slice's rail power through a probe resource.
    let mut machine = Machine::new(MachineConfig::one_slice());
    machine
        .load_program(
            NodeId(3),
            &asm("
                getr  r0, probe
                ldc   r1, 0
                setd  r0, r1          # channel 0: first core rail
                getr  r2, timer
                in    r3, r2
                add   r3, r3, 300     # wait 3 us: two monitor updates
                tmwait r2, r3
                in    r4, r0          # read rail power in microwatts
                print r4
                freet
            "),
        )
        .expect("fits");
    assert!(machine.run_until_quiescent(TimeDelta::from_us(50)));
    let text = machine.core(NodeId(3)).output();
    let microwatts: i64 = text.trim().parse().expect("a number");
    // Rail 0 carries four mostly idle cores: ≈450 mW give or take.
    assert!(
        (200_000..900_000).contains(&microwatts),
        "self-measured {microwatts} uW"
    );
}

#[test]
fn bridge_streams_data_both_ways() {
    let mut config = MachineConfig::one_slice();
    config.bridge = true;
    let mut machine = Machine::new(config);
    let bridge_chan = machine.bridge().expect("fitted").chanend();

    // Core 0: receive one word from the host, double it, send it back.
    machine
        .load_program(
            NodeId(0),
            &asm(&format!(
                "
                    getr  r0, chanend
                    ldc   r1, {dest}
                    setd  r0, r1
                    in    r2, r0
                    chkct r0, end
                    add   r2, r2, r2
                    out   r0, r2
                    outct r0, end
                    freet
                ",
                dest = bridge_chan.raw()
            )),
        )
        .expect("fits");

    // Host: send 21 to core 0's chanend 0.
    let core_chan = swallow_isa::ResourceId::new(NodeId(0), 0, swallow_isa::ResType::Chanend);
    {
        let bridge = machine.bridge_mut().expect("fitted");
        bridge.send_word(core_chan, 21);
        bridge.send_ct(core_chan, swallow_isa::ControlToken::END);
    }
    assert!(machine.run_until_quiescent(TimeDelta::from_us(200)));
    let words = machine.bridge().expect("fitted").received_words();
    assert_eq!(words, vec![42]);
}

#[test]
fn faulted_cables_break_routes_under_full_injection() {
    let mut config = MachineConfig::grid(2, 1);
    config.router = RouterKind::ShortestPaths;
    config.ffc_fault_rate = 1.0;
    let mut machine = Machine::new(config);
    assert!(machine.faulted_cables() > 0);
    // Slice 0 core sends to slice 1 core (package column 4 = node 8*...
    // node_at(4,0,V)): no surviving path, token is counted unroutable.
    let dst = machine
        .spec()
        .node_at(4, 0, swallow_noc::routing::Layer::Vertical);
    machine
        .load_program(NodeId(0), &sender(dst.raw(), 5))
        .expect("fits");
    machine.load_program(dst, &receiver()).expect("fits");
    machine.run_for(TimeDelta::from_us(50));
    assert!(machine.fabric().unroutable_tokens() > 0);
    assert_eq!(machine.core(dst).output(), "");
}

#[test]
fn partial_faults_route_around_with_shortest_paths() {
    let mut config = MachineConfig::grid(2, 1);
    config.router = RouterKind::ShortestPaths;
    config.ffc_fault_rate = 0.5;
    config.fault_seed = 7;
    let mut machine = Machine::new(config);
    let faulted = machine.faulted_cables();
    assert!(faulted > 0 && faulted < 4, "faulted = {faulted}");
    let dst = machine
        .spec()
        .node_at(7, 1, swallow_noc::routing::Layer::Horizontal);
    machine
        .load_program(NodeId(0), &sender(dst.raw(), 5))
        .expect("fits");
    machine.load_program(dst, &receiver()).expect("fits");
    assert!(machine.run_until_quiescent(TimeDelta::from_us(200)));
    assert_eq!(machine.core(dst).output(), "5\n");
}

#[test]
fn heterogeneous_frequencies_coexist() {
    let mut machine = Machine::new(MachineConfig::one_slice());
    machine.set_core_frequency(NodeId(2), Frequency::from_mhz(100));
    machine
        .load_program(NodeId(2), &sender(3, 64))
        .expect("fits");
    machine.load_program(NodeId(3), &receiver()).expect("fits");
    assert!(machine.run_until_quiescent(TimeDelta::from_us(100)));
    assert_eq!(machine.core(NodeId(3)).output(), "64\n");
}

#[test]
fn machine_ledger_collects_all_categories() {
    use swallow_energy::NodeCategory;
    let mut machine = Machine::new(MachineConfig::one_slice());
    machine
        .load_program(NodeId(0), &sender(8, 1))
        .expect("fits");
    machine.load_program(NodeId(8), &receiver()).expect("fits");
    machine.run_for(TimeDelta::from_us(5));
    let ledger = machine.machine_ledger();
    for cat in NodeCategory::ALL {
        assert!(
            ledger.get(cat).as_joules() > 0.0,
            "{cat} has no energy after a communicating run"
        );
    }
    // Static dominates a mostly idle slice.
    assert!(ledger.fraction(NodeCategory::Static) > 0.3);
}

#[test]
fn parallel_engine_delivers_across_the_slice() {
    // Communication forces the conservative engine through its early-stop
    // and reconcile paths; the message must still land, and the shard
    // ledgers must account for every core joule.
    let mut machine = Machine::new(MachineConfig {
        engine: EngineMode::Parallel { threads: 4 },
        ..MachineConfig::one_slice()
    });
    machine
        .load_program(NodeId(0), &sender(14, 4242))
        .expect("fits");
    machine.load_program(NodeId(14), &receiver()).expect("fits");
    assert!(machine.run_until_quiescent(TimeDelta::from_us(50)));
    assert_eq!(machine.core(NodeId(14)).output(), "4242\n");
    let shards = machine.shard_ledgers();
    assert!(!shards.is_empty());
    let shard_total: f64 = shards.iter().map(|l| l.total().as_joules()).sum();
    let core_total: f64 = machine
        .nodes()
        .map(|n| machine.core(n).ledger().total().as_joules())
        .sum();
    assert!(
        (shard_total - core_total).abs() <= 1e-9 * core_total.max(f64::MIN_POSITIVE),
        "shard ledgers ({shard_total} J) must add up to the core ledgers ({core_total} J)"
    );
}

#[test]
fn parallel_engine_is_deterministic_across_runs_and_thread_counts() {
    let run = |threads: usize| {
        let mut machine = Machine::new(MachineConfig {
            engine: EngineMode::Parallel { threads },
            ..MachineConfig::one_slice()
        });
        for n in 0..8u16 {
            machine
                .load_program(NodeId(n), &sender(n + 8, 1000 + u32::from(n)))
                .expect("fits");
            machine
                .load_program(NodeId(n + 8), &receiver())
                .expect("fits");
        }
        assert!(machine.run_until_quiescent(TimeDelta::from_us(100)));
        let outputs: Vec<String> = machine
            .nodes()
            .map(|n| machine.core(n).output().to_owned())
            .collect();
        (
            machine.now(),
            machine.total_instret(),
            outputs,
            machine.machine_ledger().total().as_joules(),
        )
    };
    let reference = run(4);
    for n in 8..16 {
        assert_eq!(reference.2[n], format!("{}\n", 992 + n));
    }
    // Same thread count: bit-identical. Different shard counts: identical
    // up to energy association (the ledger sums over the same charges).
    assert_eq!(run(4), reference);
    for threads in [1usize, 2, 7] {
        let other = run(threads);
        assert_eq!(other.0, reference.0, "time differs at {threads} threads");
        assert_eq!(other.1, reference.1, "instret differs at {threads} threads");
        assert_eq!(other.2, reference.2, "output differs at {threads} threads");
        assert!((other.3 - reference.3).abs() <= 1e-9 * reference.3);
    }
}

#[test]
fn negotiated_and_global_epoch_modes_agree_and_negotiation_engages() {
    // A compute-bound machine (every core spinning, no communication)
    // is exactly the shape the pairwise negotiation exists for: the
    // negotiated engine must actually run windows (not fall back to
    // fast-forward), and its results must match the global-epoch escape
    // hatch bit-for-bit in time/instret/output and to 1e-9 in energy.
    // Every core halts on the same edge, so both parallel modes must
    // also land `run_until_quiescent` on the exact quiescence instant
    // lock-step reports — the drained-window commit rule.
    let busy = asm("
            ldc   r0, 0
            ldc   r1, 200
        lp: add   r0, r0, 1
            sub   r1, r1, 1
            bt    r1, lp
            print r0
            freet
    ");
    let run = |engine: EngineMode, mode: EpochMode| {
        let mut machine = Machine::new(MachineConfig {
            engine,
            epoch_mode: mode,
            ..MachineConfig::one_slice()
        });
        machine.load_program_all(&busy).expect("fits");
        assert!(machine.run_until_quiescent(TimeDelta::from_us(50)));
        let outputs: Vec<String> = machine
            .nodes()
            .map(|n| machine.core(n).output().to_owned())
            .collect();
        (
            machine.now(),
            machine.total_instret(),
            outputs,
            machine.machine_ledger().total().as_joules(),
            machine.negotiation_stats(),
        )
    };
    let parallel = EngineMode::Parallel { threads: 4 };
    let reference = run(EngineMode::LockStep, EpochMode::Negotiated);
    let neg = run(parallel, EpochMode::Negotiated);
    let glob = run(parallel, EpochMode::Global);
    let (windows, rounds) = neg.4;
    assert!(windows > 0, "negotiation must engage on busy cores");
    assert!(rounds >= windows, "each window runs at least one round");
    assert_eq!(glob.4, (0, 0), "global mode must not negotiate");
    assert_eq!(neg.0, glob.0, "final time differs between epoch modes");
    assert_eq!(neg.1, glob.1, "instret differs between epoch modes");
    assert_eq!(neg.2, glob.2, "outputs differ between epoch modes");
    assert!((neg.3 - glob.3).abs() <= 1e-9 * glob.3.max(f64::MIN_POSITIVE));
    assert_eq!(neg.0, reference.0, "parallel must stop at lock-step's t_q");
    assert_eq!(neg.1, reference.1, "instret differs from lock-step");
    assert_eq!(neg.2, reference.2, "outputs differ from lock-step");
    assert!((neg.3 - reference.3).abs() <= 1e-9 * reference.3.max(f64::MIN_POSITIVE));
    // Determinism: repeat runs of the negotiated mode are bit-identical,
    // energy included.
    let again = run(parallel, EpochMode::Negotiated);
    assert_eq!(neg, again, "negotiated runs must be bit-identical");
}

#[test]
fn engine_can_switch_to_parallel_mid_run() {
    let mut machine = Machine::new(MachineConfig::one_slice());
    machine
        .load_program_all(&asm("ldc r0, 7\n print r0\n freet"))
        .expect("fits");
    machine.run_for(TimeDelta::from_ns(100));
    machine.set_engine(EngineMode::Parallel { threads: 2 });
    assert!(machine.run_until_quiescent(TimeDelta::from_us(10)));
    for node in machine.nodes().collect::<Vec<_>>() {
        assert_eq!(machine.core(node).output(), "7\n");
    }
}

// --- snapshot / restore -----------------------------------------------------

/// A machine mid-gather: every non-zero core streams words at node 0, so
/// a snapshot taken a few microseconds in catches live channel state.
fn busy_machine() -> Machine {
    let mut machine = Machine::new(MachineConfig::one_slice());
    let gather = asm("
            getr  r0, chanend
            ldc   r3, 15
            ldc   r4, 0
        gl:
            in    r1, r0
            chkct r0, end
            add   r4, r4, r1
            sub   r3, r3, 1
            bt    r3, gl
            print r4
            freet
    ");
    machine.load_program(NodeId(0), &gather).expect("fits");
    for n in 1..16u16 {
        machine
            .load_program(NodeId(n), &sender(0, n as u32))
            .expect("fits");
    }
    machine
}

#[test]
fn snapshot_restore_snapshot_is_byte_identical() {
    let mut machine = busy_machine();
    machine.run_for(TimeDelta::from_ns(500));
    let image = machine.snapshot();
    let restored = Machine::restore(&image).expect("valid image");
    assert_eq!(restored.now(), machine.now());
    assert_eq!(restored.total_instret(), machine.total_instret());
    assert_eq!(restored.snapshot(), image, "re-snapshot must be identical");
}

#[test]
fn restored_machine_continues_bit_identically() {
    let mut original = busy_machine();
    original.run_for(TimeDelta::from_ns(700));
    let image = original.snapshot();
    assert!(original.run_until_quiescent(TimeDelta::from_ms(2)));
    let mut restored = Machine::restore(&image).expect("valid image");
    assert!(restored.run_until_quiescent(TimeDelta::from_ms(2)));
    assert_eq!(restored.now(), original.now());
    assert_eq!(restored.total_instret(), original.total_instret());
    for node in original.nodes().collect::<Vec<_>>() {
        assert_eq!(restored.core(node).output(), original.core(node).output());
    }
    assert_eq!(restored.core(NodeId(0)).output(), "120\n");
    let a = original.machine_ledger().total().as_joules();
    let b = restored.machine_ledger().total().as_joules();
    assert!((a - b).abs() <= 1e-9 * a.abs().max(f64::MIN_POSITIVE));
}

#[test]
fn snapshot_restores_under_every_engine() {
    let mut original = busy_machine();
    original.run_for(TimeDelta::from_ns(700));
    let image = original.snapshot();
    assert!(original.run_until_quiescent(TimeDelta::from_ms(2)));
    for engine in [
        EngineMode::LockStep,
        EngineMode::FastForward,
        EngineMode::Parallel { threads: 4 },
    ] {
        let mut restored = Machine::restore(&image).expect("valid image");
        restored.set_engine(engine);
        assert!(restored.run_until_quiescent(TimeDelta::from_ms(2)));
        assert_eq!(restored.now(), original.now(), "{engine:?}");
        assert_eq!(restored.total_instret(), original.total_instret());
        assert_eq!(restored.core(NodeId(0)).output(), "120\n");
    }
}

#[test]
fn truncated_and_corrupt_snapshots_are_rejected() {
    let mut machine = busy_machine();
    machine.run_for(TimeDelta::from_ns(500));
    let image = machine.snapshot();
    // Every truncation point in the header plus a spread through the
    // body must fail cleanly.
    for len in (0..64).chain((64..image.len()).step_by(image.len() / 53)) {
        assert!(Machine::restore(&image[..len]).is_err(), "len {len}");
    }
    // Single-byte corruption anywhere is caught (FNV-1a over each
    // section payload; tags/lengths are checked structurally).
    for at in (0..image.len()).step_by(image.len() / 97) {
        let mut bad = image.clone();
        bad[at] ^= 0x40;
        assert!(Machine::restore(&bad).is_err(), "corrupt byte {at}");
    }
}
