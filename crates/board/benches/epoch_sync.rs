//! Epoch-synchronisation cost of the parallel engine: the
//! barrier-per-epoch global clock (`EpochMode::Global`, the PR 2 design)
//! vs the pairwise watermark negotiation (`EpochMode::Negotiated`),
//! swept over host thread counts on a compute-bound slice.
//!
//! The workload is the shape the negotiation exists for: every core
//! spinning, no communication, so the global mode pays one pool
//! dispatch + condvar round-trip per 32 ns epoch while the negotiated
//! mode pays one per ~1 µs monitor window and synchronises through
//! lock-free round slots in between. On a single-CPU host the absolute
//! numbers compress (workers time-slice), but the dispatch-count gap —
//! what this bench measures — survives.

use swallow_board::{EngineMode, EpochMode, Machine, MachineConfig};
use swallow_isa::Assembler;
use swallow_sim::TimeDelta;
use swallow_testkit::criterion::{criterion_group, criterion_main, Criterion};

/// Simulated span per timed sample: several monitor windows, so both
/// modes cross their serial boundaries a representative number of times.
const SPAN_US: u64 = 5;

fn busy_machine(threads: usize, mode: EpochMode) -> Machine {
    let program = Assembler::new()
        .assemble(
            "
                ldc   r0, 0
            lp: add   r0, r0, 1
                bu    lp
            ",
        )
        .expect("spin assembles");
    let mut machine = Machine::new(MachineConfig {
        engine: EngineMode::Parallel { threads },
        epoch_mode: mode,
        ..MachineConfig::one_slice()
    });
    machine.load_program_all(&program).expect("fits");
    machine
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("epoch_sync");
    g.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        for (name, mode) in [
            ("global", EpochMode::Global),
            ("negotiated", EpochMode::Negotiated),
        ] {
            g.bench_function(&format!("{name}/{threads}"), |b| {
                b.iter(|| {
                    let mut machine = busy_machine(threads, mode);
                    machine.run_for(TimeDelta::from_us(SPAN_US));
                    machine.total_instret()
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
