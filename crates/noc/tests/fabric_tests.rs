//! Fabric behaviour tests: wormhole ownership, credit flow control, link
//! aggregation, packet overhead and energy accounting.

use swallow_energy::WireClass;
use swallow_isa::{ControlToken, NodeId, ResType, ResourceId, Token};
use swallow_noc::endpoints::TestEndpoints;
use swallow_noc::routing::LinkDesc;
use swallow_noc::{Direction, Fabric, FabricBuilder, LinkParams, TableRouter};
use swallow_sim::{Time, TimeDelta};

fn chan(node: u16, idx: u8) -> ResourceId {
    ResourceId::new(NodeId(node), idx, ResType::Chanend)
}

/// Builds a two-node fabric with `pairs` parallel on-chip link pairs.
fn two_nodes(pairs: usize) -> (Fabric, TestEndpoints) {
    let mut b = FabricBuilder::new(2);
    for _ in 0..pairs {
        b.link_two_way(
            NodeId(0),
            NodeId(1),
            Direction::East,
            LinkParams::from_class(WireClass::OnChip),
        );
    }
    let router = TableRouter::shortest_paths(2, b.link_descs());
    (b.build(Box::new(router)), TestEndpoints::new(2))
}

/// Steps the fabric every 2 ns until idle and all output queues drained
/// (or the time budget expires). Returns the final simulated time.
fn run(fabric: &mut Fabric, eps: &mut TestEndpoints, budget_ns: u64) -> Time {
    let step = TimeDelta::from_ns(2);
    let mut now = Time::ZERO;
    for _ in 0..budget_ns / 2 {
        now += step;
        fabric.step(now, eps);
        let drained = (0..eps.out.len()).all(|n| eps.out[n].iter().all(|q| q.is_empty()));
        if drained && fabric.is_idle() {
            break;
        }
    }
    now
}

#[test]
fn single_word_crosses_one_link() {
    let (mut fabric, mut eps) = two_nodes(1);
    eps.queue_word(NodeId(0), 0, chan(1, 3), 0xCAFE_F00D);
    eps.queue_token(NodeId(0), 0, chan(1, 3), Token::Ctrl(ControlToken::END));
    let end = run(&mut fabric, &mut eps, 100_000);
    assert_eq!(eps.received_words(NodeId(1), 3), vec![0xCAFE_F00D]);
    assert_eq!(fabric.unroutable_tokens(), 0);
    // 3 header + 4 data + 1 END tokens at 32 ns = 256 ns on the wire.
    let expected = TimeDelta::from_ns(8 * 32);
    assert!(
        end.since(Time::ZERO) >= expected
            && end.since(Time::ZERO) <= expected + TimeDelta::from_ns(40),
        "took {end}"
    );
    let stats: Vec<_> = fabric.link_stats().collect();
    let east = stats.iter().find(|s| s.data_tokens > 0).expect("used link");
    assert_eq!(east.data_tokens, 4);
    assert_eq!(east.ctrl_tokens, 1);
    assert_eq!(east.header_tokens, 3);
}

#[test]
fn min_cross_shard_latency_is_the_token_time() {
    // The parallel engine's lookahead: a token needs 3·Ts + Tt = 8
    // link-clock cycles per hop (§V.C) — 32 ns on the 250 MHz on-chip
    // class, the fastest wire in the machine. Loopback is core-local and
    // deliberately excluded.
    let (fabric, _) = two_nodes(2);
    assert_eq!(
        fabric.min_cross_shard_latency(),
        Some(TimeDelta::from_ns(32))
    );
    let empty = FabricBuilder::new(1).build(Box::new(TableRouter::shortest_paths(1, &[])));
    assert_eq!(empty.min_cross_shard_latency(), None);
}

#[test]
fn packet_overhead_approaches_paper_figure() {
    // "The overhead of packet data reduces throughput to approximately
    // 87% of the link speed, but is dependent upon the packet size."
    // 8-word packets: 32 data tokens per 3 header + 1 END = 32/36 = 88.9%.
    let (mut fabric, mut eps) = two_nodes(1);
    let packets = 50;
    for _ in 0..packets {
        for w in 0..8u32 {
            eps.queue_word(NodeId(0), 0, chan(1, 0), w);
        }
        eps.queue_token(NodeId(0), 0, chan(1, 0), Token::Ctrl(ControlToken::END));
    }
    let end = run(&mut fabric, &mut eps, 10_000_000);
    assert_eq!(eps.received_words(NodeId(1), 0).len(), packets * 8);
    let stats = fabric
        .link_stats()
        .find(|s| s.data_tokens > 0)
        .expect("used");
    let total_tokens = stats.data_tokens + stats.ctrl_tokens + stats.header_tokens;
    let efficiency = stats.data_tokens as f64 / total_tokens as f64;
    assert!(
        (efficiency - 32.0 / 36.0).abs() < 0.01,
        "efficiency = {efficiency}"
    );
    // Wall-clock efficiency agrees: payload bits / (elapsed × raw rate).
    let elapsed = end.since(Time::ZERO).as_secs_f64();
    let payload_rate = (stats.data_tokens * 8) as f64 / elapsed;
    assert!(
        payload_rate / 250e6 > 0.80 && payload_rate / 250e6 < 0.92,
        "payload rate = {payload_rate}"
    );
}

#[test]
fn open_route_blocks_other_flows_until_end() {
    let (mut fabric, mut eps) = two_nodes(1);
    // Flow A (chanend 0) sends one word and holds the route open.
    eps.queue_word(NodeId(0), 0, chan(1, 0), 0xAAAA_AAAA);
    // Flow B (chanend 1) wants the same link.
    eps.queue_word(NodeId(0), 1, chan(1, 1), 0xBBBB_BBBB);
    eps.queue_token(NodeId(0), 1, chan(1, 1), Token::Ctrl(ControlToken::END));
    let step = TimeDelta::from_ns(2);
    let mut now = Time::ZERO;
    for _ in 0..2_000 {
        now += step;
        fabric.step(now, &mut eps);
    }
    // A arrived, B is stuck behind the open circuit.
    assert_eq!(eps.received_words(NodeId(1), 0), vec![0xAAAA_AAAA]);
    assert!(eps.received(NodeId(1), 1).is_empty(), "B should be blocked");
    // A closes the route; B now proceeds.
    eps.queue_token(NodeId(0), 0, chan(1, 0), Token::Ctrl(ControlToken::END));
    run(&mut fabric, &mut eps, 100_000);
    assert_eq!(eps.received_words(NodeId(1), 1), vec![0xBBBB_BBBB]);
}

#[test]
fn aggregated_links_carry_concurrent_flows() {
    // With two parallel links, two simultaneous circuits both make
    // progress ("a new communication will use the next unused link").
    let (mut fabric, mut eps) = two_nodes(2);
    for w in 0..16u32 {
        eps.queue_word(NodeId(0), 0, chan(1, 0), w);
        eps.queue_word(NodeId(0), 1, chan(1, 1), w + 100);
    }
    let step = TimeDelta::from_ns(2);
    let mut now = Time::ZERO;
    for _ in 0..1_500 {
        now += step;
        fabric.step(now, &mut eps);
    }
    // Both flows have delivered data despite neither sending END.
    assert!(!eps.received(NodeId(1), 0).is_empty(), "flow A starved");
    assert!(!eps.received(NodeId(1), 1).is_empty(), "flow B starved");
    // And both physical links saw traffic.
    let used = fabric.link_stats().filter(|s| s.data_tokens > 0).count();
    assert_eq!(used, 2);
}

#[test]
fn with_one_link_second_flow_waits() {
    // The control for the aggregation test: same load, single link pair.
    let (mut fabric, mut eps) = two_nodes(1);
    for w in 0..16u32 {
        eps.queue_word(NodeId(0), 0, chan(1, 0), w);
        eps.queue_word(NodeId(0), 1, chan(1, 1), w + 100);
    }
    let step = TimeDelta::from_ns(2);
    let mut now = Time::ZERO;
    for _ in 0..1_500 {
        now += step;
        fabric.step(now, &mut eps);
    }
    assert!(!eps.received(NodeId(1), 0).is_empty());
    assert!(eps.received(NodeId(1), 1).is_empty(), "no END: B must wait");
}

#[test]
fn credit_stall_preserves_tokens() {
    let (mut fabric, mut eps) = two_nodes(1);
    eps.in_capacity = 0; // receiver refuses everything
    for w in 0..8u32 {
        eps.queue_word(NodeId(0), 0, chan(1, 0), w);
    }
    let step = TimeDelta::from_ns(2);
    let mut now = Time::ZERO;
    for _ in 0..5_000 {
        now += step;
        fabric.step(now, &mut eps);
    }
    assert!(eps.received(NodeId(1), 0).is_empty());
    // The credit window bounds what left the source: at most RX_CAPACITY
    // tokens are in the network.
    let queued: usize = eps.out[0][0].len();
    assert!(
        queued >= 32 - swallow_noc::fabric::RX_CAPACITY,
        "too many tokens absorbed: {queued} left"
    );
    // Open the tap: everything flows, nothing was lost.
    eps.in_capacity = 8;
    run(&mut fabric, &mut eps, 1_000_000);
    let words = eps.received_words(NodeId(1), 0);
    assert_eq!(words, (0..8).collect::<Vec<u32>>());
}

#[test]
fn multi_hop_line_delivers_in_order() {
    let mut b = FabricBuilder::new(3);
    let params = LinkParams::from_class(WireClass::BoardVertical);
    b.link_two_way(NodeId(0), NodeId(1), Direction::South, params);
    b.link_two_way(NodeId(1), NodeId(2), Direction::South, params);
    let router = TableRouter::shortest_paths(3, b.link_descs());
    let mut fabric = b.build(Box::new(router));
    let mut eps = TestEndpoints::new(3);
    for w in 0..5u32 {
        eps.queue_word(NodeId(0), 0, chan(2, 7), w * 3);
    }
    eps.queue_token(NodeId(0), 0, chan(2, 7), Token::Ctrl(ControlToken::END));
    run(&mut fabric, &mut eps, 10_000_000);
    assert_eq!(eps.received_words(NodeId(2), 7), vec![0, 3, 6, 9, 12]);
    assert_eq!(fabric.unroutable_tokens(), 0);
    // Both hops carried the full packet (and their own headers).
    for s in fabric.link_stats().filter(|s| s.data_tokens > 0) {
        assert_eq!(s.data_tokens, 20);
        assert_eq!(s.header_tokens, 3);
        assert_eq!(s.ctrl_tokens, 1);
    }
}

#[test]
fn core_local_traffic_takes_the_loopback() {
    let (mut fabric, mut eps) = two_nodes(1);
    eps.queue_word(NodeId(0), 0, chan(0, 1), 77);
    run(&mut fabric, &mut eps, 10_000);
    assert_eq!(eps.received_words(NodeId(0), 1), vec![77]);
    // No physical link was used.
    assert!(fabric.link_stats().all(|s| s.data_tokens == 0));
    assert_eq!(fabric.total_energy(), swallow_energy::Energy::ZERO);
}

#[test]
fn unroutable_tokens_are_counted_not_wedged() {
    // Node 1 has no route back to node 0.
    let mut b = FabricBuilder::new(2);
    b.link_one_way(
        NodeId(0),
        NodeId(1),
        Direction::East,
        LinkParams::from_class(WireClass::OnChip),
    );
    let router = TableRouter::shortest_paths(2, b.link_descs());
    let mut fabric = b.build(Box::new(router));
    let mut eps = TestEndpoints::new(2);
    eps.queue_word(NodeId(1), 0, chan(0, 0), 5);
    eps.queue_word(NodeId(1), 1, chan(0, 0), 6); // also unroutable
    run(&mut fabric, &mut eps, 10_000);
    assert_eq!(fabric.unroutable_tokens(), 8);
    assert!(fabric.is_idle());
}

#[test]
fn link_energy_matches_table_i_per_bit() {
    let (mut fabric, mut eps) = two_nodes(1);
    let words = 256u32;
    for w in 0..words {
        eps.queue_word(NodeId(0), 0, chan(1, 0), w);
    }
    eps.queue_token(NodeId(0), 0, chan(1, 0), Token::Ctrl(ControlToken::END));
    run(&mut fabric, &mut eps, 100_000_000);
    let stats = fabric
        .link_stats()
        .find(|s| s.data_tokens > 0)
        .expect("used");
    assert_eq!(stats.data_tokens as u32, words * 4);
    // Raw per-bit energy (payload + header + ctrl overhead amortised over
    // payload bits) is within a few percent of Table I's 5.6 pJ/bit for a
    // long packet.
    let per_bit = stats.energy_per_payload_bit().as_picojoules();
    let expected = WireClass::OnChip.energy_per_bit().as_picojoules();
    assert!(
        per_bit >= expected && per_bit < expected * 1.05,
        "per_bit = {per_bit} vs {expected}"
    );
}

#[test]
fn vertical_first_router_on_a_package_pair_reaches_everything() {
    use swallow_noc::routing::{Coord, Layer};
    // Two packages side by side: nodes 0/1 (pkg 0: V, H), 2/3 (pkg 1).
    let coords = vec![
        Coord {
            x: 0,
            y: 0,
            layer: Layer::Vertical,
        },
        Coord {
            x: 0,
            y: 0,
            layer: Layer::Horizontal,
        },
        Coord {
            x: 1,
            y: 0,
            layer: Layer::Vertical,
        },
        Coord {
            x: 1,
            y: 0,
            layer: Layer::Horizontal,
        },
    ];
    let mut b = FabricBuilder::new(4);
    let internal = LinkParams::from_class(WireClass::OnChip);
    let board = LinkParams::from_class(WireClass::BoardHorizontal);
    b.link_two_way(NodeId(0), NodeId(1), Direction::Internal, internal);
    b.link_two_way(NodeId(2), NodeId(3), Direction::Internal, internal);
    b.link_two_way(NodeId(1), NodeId(3), Direction::East, board);
    let descs: Vec<LinkDesc> = b.link_descs().to_vec();
    let router = TableRouter::vertical_first(&coords, &descs);
    let mut fabric = b.build(Box::new(router));
    let mut eps = TestEndpoints::new(4);
    // Every node sends to every other node.
    for src in 0..4u16 {
        for dst in 0..4u16 {
            if src == dst {
                continue;
            }
            eps.queue_word(
                NodeId(src),
                dst as u8,
                chan(dst, src as u8),
                (src as u32) << 8 | dst as u32,
            );
            eps.queue_token(
                NodeId(src),
                dst as u8,
                chan(dst, src as u8),
                Token::Ctrl(ControlToken::END),
            );
        }
    }
    run(&mut fabric, &mut eps, 10_000_000);
    assert_eq!(fabric.unroutable_tokens(), 0);
    for src in 0..4u16 {
        for dst in 0..4u16 {
            if src == dst {
                continue;
            }
            assert_eq!(
                eps.received_words(NodeId(dst), src as u8),
                vec![(src as u32) << 8 | dst as u32],
                "{src} -> {dst}"
            );
        }
    }
}
