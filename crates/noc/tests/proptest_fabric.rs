//! Property tests over the fabric: arbitrary line/ring topologies and
//! packetisations always deliver every token, in order, with zero loss.

use swallow_energy::WireClass;
use swallow_isa::{ControlToken, NodeId, ResType, ResourceId, Token};
use swallow_noc::endpoints::TestEndpoints;
use swallow_noc::{Direction, Fabric, FabricBuilder, LinkParams, TableRouter};
use swallow_sim::{Time, TimeDelta};
use swallow_testkit::proptest::prelude::*;

fn chan(node: u16, idx: u8) -> ResourceId {
    ResourceId::new(NodeId(node), idx, ResType::Chanend)
}

/// A ring of `n` nodes (directed both ways) over on-chip links.
fn ring(n: usize) -> Fabric {
    let mut b = FabricBuilder::new(n);
    for i in 0..n {
        let j = (i + 1) % n;
        b.link_two_way(
            NodeId(i as u16),
            NodeId(j as u16),
            Direction::East,
            LinkParams::from_class(WireClass::OnChip),
        );
    }
    let router = TableRouter::shortest_paths(n, b.link_descs());
    b.build(Box::new(router))
}

fn drain(fabric: &mut Fabric, eps: &mut TestEndpoints, budget_steps: u64) {
    let step = TimeDelta::from_ns(2);
    let mut now = Time::ZERO;
    for _ in 0..budget_steps {
        now += step;
        fabric.step(now, eps);
        let empty = (0..eps.out.len()).all(|n| eps.out[n].iter().all(|q| q.is_empty()));
        if empty && fabric.is_idle() {
            return;
        }
    }
    panic!("fabric did not drain");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Words sent around a ring arrive complete and in order, regardless
    /// of ring size, hop distance and packet size.
    #[test]
    fn ring_streams_deliver_in_order(
        n in 3usize..10,
        hops in 1usize..6,
        words in 1u32..24,
        packet in 1u32..8,
    ) {
        let src = 0u16;
        let dst = ((hops) % n) as u16;
        prop_assume!(dst != src);
        let mut fabric = ring(n);
        let mut eps = TestEndpoints::new(n);
        let mut sent = Vec::new();
        for w in 0..words {
            let value = w.wrapping_mul(0x9E37_79B9);
            eps.queue_word(NodeId(src), 0, chan(dst, 1), value);
            sent.push(value);
            if (w + 1) % packet == 0 {
                eps.queue_token(NodeId(src), 0, chan(dst, 1), Token::Ctrl(ControlToken::END));
            }
        }
        eps.queue_token(NodeId(src), 0, chan(dst, 1), Token::Ctrl(ControlToken::END));
        drain(&mut fabric, &mut eps, 2_000_000);
        prop_assert_eq!(eps.received_words(NodeId(dst), 1), sent);
        prop_assert_eq!(fabric.unroutable_tokens(), 0);
    }

    /// Many concurrent flows on one ring: every flow's words arrive
    /// complete and in per-flow order (cross-flow order unconstrained).
    #[test]
    fn concurrent_flows_never_corrupt(
        n in 4usize..8,
        flows in 2usize..6,
        words in 1u32..12,
    ) {
        let mut fabric = ring(n);
        let mut eps = TestEndpoints::new(n);
        for f in 0..flows {
            let src = (f % n) as u16;
            let dst = ((f + 1 + f % (n - 1)) % n) as u16;
            let (src, dst) = if src == dst { (src, (dst + 1) % n as u16) } else { (src, dst) };
            for w in 0..words {
                eps.queue_word(NodeId(src), f as u8, chan(dst, f as u8), (f as u32) << 16 | w);
            }
            eps.queue_token(NodeId(src), f as u8, chan(dst, f as u8), Token::Ctrl(ControlToken::END));
        }
        drain(&mut fabric, &mut eps, 4_000_000);
        prop_assert_eq!(fabric.unroutable_tokens(), 0);
        for f in 0..flows {
            let src = (f % n) as u16;
            let dst = ((f + 1 + f % (n - 1)) % n) as u16;
            let (_, dst) = if src == dst { (src, (dst + 1) % n as u16) } else { (src, dst) };
            let got = eps.received_words(NodeId(dst), f as u8);
            let want: Vec<u32> = (0..words).map(|w| (f as u32) << 16 | w).collect();
            prop_assert_eq!(got, want, "flow {}", f);
        }
    }

    /// PAUSE releases the route like END but lets the message continue:
    /// receivers see all data tokens around it.
    #[test]
    fn pause_tokens_pass_through(words_before in 1u32..6, words_after in 1u32..6) {
        let mut fabric = ring(4);
        let mut eps = TestEndpoints::new(4);
        for w in 0..words_before {
            eps.queue_word(NodeId(0), 0, chan(2, 0), w);
        }
        eps.queue_token(NodeId(0), 0, chan(2, 0), Token::Ctrl(ControlToken::PAUSE));
        for w in 0..words_after {
            eps.queue_word(NodeId(0), 0, chan(2, 0), 100 + w);
        }
        eps.queue_token(NodeId(0), 0, chan(2, 0), Token::Ctrl(ControlToken::END));
        drain(&mut fabric, &mut eps, 1_000_000);
        let words: Vec<u32> = eps.received_words(NodeId(2), 0);
        let want: Vec<u32> = (0..words_before).chain((0..words_after).map(|w| 100 + w)).collect();
        prop_assert_eq!(words, want);
    }
}
