//! Property tests over route recomputation: a shortest-path table
//! rebuilt after removing links still routes every pair the surviving
//! topology can reach, and never steers a token onto a removed link —
//! the correctness core of the board layer's fault rerouting.

use std::collections::{HashSet, VecDeque};
use swallow_isa::NodeId;
use swallow_noc::{Direction, LinkDesc, LinkId, Router, TableRouter};
use swallow_testkit::proptest::prelude::*;

/// Forward reachability over a directed link list.
fn reachable_from(n: usize, links: &[LinkDesc], start: usize) -> Vec<bool> {
    let mut seen = vec![false; n];
    seen[start] = true;
    let mut queue = VecDeque::from([start]);
    while let Some(at) = queue.pop_front() {
        for l in links {
            let (from, to) = (l.from.raw() as usize, l.to.raw() as usize);
            if from == at && !seen[to] {
                seen[to] = true;
                queue.push_back(to);
            }
        }
    }
    seen
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Remove up to k random links from a ring-plus-chords topology and
    /// rebuild the table: every still-reachable pair routes to its
    /// destination in ≤ n hops, every offered candidate is a surviving
    /// link leaving the current node, and unreachable pairs are cleanly
    /// unroutable (empty candidates, the quarantine signal).
    #[test]
    fn recomputed_tables_route_survivors_and_avoid_removed_links(
        n in 4usize..10,
        chords in proptest::collection::vec((0usize..16, 0usize..16), 0..8),
        removals in proptest::collection::vec(0usize..64, 0..7),
    ) {
        // Directed ring both ways, plus random bidirectional chords;
        // link ids are their build order, like a FabricBuilder's.
        let mut links: Vec<LinkDesc> = Vec::new();
        let push = |links: &mut Vec<LinkDesc>, from: usize, to: usize| {
            let id = LinkId::from_raw(links.len() as u32);
            links.push(LinkDesc {
                id,
                from: NodeId(from as u16),
                to: NodeId(to as u16),
                dir: Direction::East,
            });
        };
        for i in 0..n {
            push(&mut links, i, (i + 1) % n);
            push(&mut links, (i + 1) % n, i);
        }
        for &(a, b) in &chords {
            let (a, b) = (a % n, b % n);
            if a != b {
                push(&mut links, a, b);
                push(&mut links, b, a);
            }
        }
        let removed: HashSet<u32> =
            removals.iter().map(|&r| (r % links.len()) as u32).collect();
        let alive: Vec<LinkDesc> = links
            .iter()
            .copied()
            .filter(|l| !removed.contains(&l.id.raw()))
            .collect();
        // Ids survive filtering unchanged — exactly what the board layer
        // feeds back into the live fabric after a link dies.
        let router = TableRouter::shortest_paths(n, &alive);

        for src in 0..n {
            let reach = reachable_from(n, &alive, src);
            for dst in (0..n).filter(|&d| d != src) {
                let cands = router.candidates(NodeId(src as u16), NodeId(dst as u16));
                if !reach[dst] {
                    prop_assert!(
                        cands.is_empty(),
                        "{src}->{dst} unreachable yet routed"
                    );
                    continue;
                }
                prop_assert!(!cands.is_empty(), "{src}->{dst} reachable yet unroutable");
                // Walk the first-preference route; it must stay on
                // surviving links and land within n hops.
                let mut at = src;
                let mut hops = 0usize;
                while at != dst {
                    let c = router.candidates(NodeId(at as u16), NodeId(dst as u16));
                    prop_assert!(!c.is_empty(), "stranded at {at} en route {src}->{dst}");
                    for cand in c.iter() {
                        prop_assert!(
                            !removed.contains(&cand.raw()),
                            "candidate {} at {at} for {src}->{dst} is a removed link",
                            cand.raw()
                        );
                    }
                    let first = c.iter().next().expect("non-empty");
                    let taken = alive
                        .iter()
                        .find(|l| l.id == first)
                        .expect("candidate must be a surviving link");
                    prop_assert_eq!(
                        taken.from.raw() as usize, at,
                        "candidate does not leave the current node"
                    );
                    at = taken.to.raw() as usize;
                    hops += 1;
                    prop_assert!(hops <= n, "route {src}->{dst} exceeds {n} hops");
                }
            }
        }
    }
}
