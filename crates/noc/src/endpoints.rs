//! The fabric↔core boundary.
//!
//! The fabric pulls tokens out of channel-end output buffers and delivers
//! tokens into input buffers, respecting the credit rule (never deliver
//! into a full buffer). `swallow-board` implements this for real
//! `swallow_xcore::Core`s; tests use light-weight doubles.

use swallow_isa::{NodeId, ResourceId, Token};

/// Access to the channel ends of every core attached to a fabric.
///
/// All methods address a core by its [`NodeId`]; channel ends by their
/// per-core index.
pub trait CoreEndpoints {
    /// True when any chanend on `node` has tokens waiting to transmit.
    /// Must be O(1)-cheap: the fabric calls it per node per step to skip
    /// the injection scan.
    fn has_tx_pending(&self, node: NodeId) -> bool;

    /// Visits every chanend index on `node` with tokens waiting to
    /// transmit, in ascending index order. Allocation-free by design
    /// (the old `-> Vec<u8>` shape allocated on every fabric step).
    fn for_each_tx_pending(&self, node: NodeId, visit: &mut dyn FnMut(u8));

    /// The next outgoing token of a chanend and its destination.
    fn tx_front(&self, node: NodeId, chanend: u8) -> Option<(ResourceId, Token)>;

    /// Removes the next outgoing token (the switch accepted it).
    fn tx_pop(&mut self, node: NodeId, chanend: u8) -> Option<(ResourceId, Token)>;

    /// Credit check: can `n` more tokens be delivered to this chanend?
    fn can_accept(&self, node: NodeId, chanend: u8, n: usize) -> bool;

    /// Delivers a token. Returns false when refused (no such chanend or
    /// no credit); the fabric will retry later.
    fn deliver(&mut self, node: NodeId, chanend: u8, token: Token) -> bool;
}

/// A minimal in-memory endpoint set for fabric unit tests: every node has
/// `CHANENDS` channel ends with unbounded output queues and bounded input
/// buffers.
#[derive(Clone, Debug)]
pub struct TestEndpoints {
    /// Per node, per chanend: queued outgoing (dest, token) pairs.
    pub out: Vec<Vec<std::collections::VecDeque<(ResourceId, Token)>>>,
    /// Per node, per chanend: received tokens.
    pub inbox: Vec<Vec<Vec<Token>>>,
    /// Input buffer capacity (credit window).
    pub in_capacity: usize,
}

/// Channel ends per test node.
pub const TEST_CHANENDS: usize = 8;

impl TestEndpoints {
    /// Creates endpoints for `nodes` nodes.
    pub fn new(nodes: usize) -> Self {
        TestEndpoints {
            out: vec![vec![Default::default(); TEST_CHANENDS]; nodes],
            inbox: vec![vec![Vec::new(); TEST_CHANENDS]; nodes],
            in_capacity: 8,
        }
    }

    /// Queues a word (as four data tokens) for transmission.
    pub fn queue_word(&mut self, node: NodeId, chanend: u8, dest: ResourceId, word: u32) {
        for t in swallow_isa::token::word_to_tokens(word) {
            self.out[node.raw() as usize][chanend as usize].push_back((dest, t));
        }
    }

    /// Queues a single token.
    pub fn queue_token(&mut self, node: NodeId, chanend: u8, dest: ResourceId, token: Token) {
        self.out[node.raw() as usize][chanend as usize].push_back((dest, token));
    }

    /// Received tokens of one chanend.
    pub fn received(&self, node: NodeId, chanend: u8) -> &[Token] {
        &self.inbox[node.raw() as usize][chanend as usize]
    }

    /// Drains and reassembles received data tokens into words (MSB first),
    /// ignoring control tokens.
    pub fn received_words(&self, node: NodeId, chanend: u8) -> Vec<u32> {
        let bytes: Vec<u8> = self
            .received(node, chanend)
            .iter()
            .filter_map(|t| t.data())
            .collect();
        bytes
            .chunks_exact(4)
            .map(|c| u32::from_be_bytes([c[0], c[1], c[2], c[3]]))
            .collect()
    }
}

impl CoreEndpoints for TestEndpoints {
    fn has_tx_pending(&self, node: NodeId) -> bool {
        self.out[node.raw() as usize].iter().any(|q| !q.is_empty())
    }

    fn for_each_tx_pending(&self, node: NodeId, visit: &mut dyn FnMut(u8)) {
        for (i, q) in self.out[node.raw() as usize].iter().enumerate() {
            if !q.is_empty() {
                visit(i as u8);
            }
        }
    }

    fn tx_front(&self, node: NodeId, chanend: u8) -> Option<(ResourceId, Token)> {
        self.out[node.raw() as usize][chanend as usize]
            .front()
            .copied()
    }

    fn tx_pop(&mut self, node: NodeId, chanend: u8) -> Option<(ResourceId, Token)> {
        self.out[node.raw() as usize][chanend as usize].pop_front()
    }

    fn can_accept(&self, node: NodeId, chanend: u8, n: usize) -> bool {
        let node = node.raw() as usize;
        if node >= self.inbox.len() || chanend as usize >= TEST_CHANENDS {
            return false;
        }
        // Test inboxes are unbounded archives; emulate a credit window by
        // always granting `in_capacity` (tests that need stalls shrink it).
        n <= self.in_capacity
    }

    fn deliver(&mut self, node: NodeId, chanend: u8, token: Token) -> bool {
        let n = node.raw() as usize;
        if n >= self.inbox.len() || chanend as usize >= TEST_CHANENDS {
            return false;
        }
        self.inbox[n][chanend as usize].push(token);
        true
    }
}
