//! The Swallow interconnect model.
//!
//! Swallow exploits the XS1 network architecture (§IV.D, §V of the paper):
//! one switch per core, five-wire links carrying eight-bit tokens,
//! wormhole routing with credit-based flow control, routes opened by a
//! three-byte header and held until an END or PAUSE control token.
//!
//! This crate models that fabric *token by token*:
//!
//! * [`link`] — directed links with a wire class (on-chip / on-board /
//!   off-board FFC), a token rate derived from the five-wire protocol's
//!   symbol timing, per-token energy, wormhole ownership and credit
//!   accounting,
//! * [`fabric`] — the network: switches, links, in-flight tokens and the
//!   per-step forwarding algorithm (header injection, HoL blocking,
//!   link aggregation, route release),
//! * [`routing`] — the [`routing::Router`] abstraction ("new
//!   routing algorithms can simply be programmed in software", §V.A),
//!   a shortest-path table builder, and the vertical-first dimension-order
//!   router for the unwoven lattice,
//! * [`endpoints`] — the trait by which the fabric exchanges tokens with
//!   processor cores (implemented by `swallow-board` for real cores and
//!   by in-crate test doubles here).

pub mod endpoints;
pub mod fabric;
pub mod link;
pub mod routing;

pub use endpoints::CoreEndpoints;
pub use fabric::{Fabric, FabricBuilder, LinkStats, MAX_LINK_RETRIES};
pub use link::{Direction, LinkId, LinkParams, HEADER_TOKENS};
pub use routing::{Candidates, Coord, Layer, LinkDesc, Router, TableRouter};
