//! Directed links.
//!
//! A physical Swallow link is five wires per direction carrying eight-bit
//! tokens as four two-bit symbols; a token's transmit time is `3·Ts + Tt`
//! link-clock cycles (§V.C). At the Swallow operating points this yields
//! the Table I data rates; [`LinkParams`] lets either view be used.

use std::fmt;
use swallow_energy::{Energy, WireClass, WireParams};
use swallow_sim::{Frequency, TimeDelta};

/// Tokens of route header prefixed to each packet (§V.B: "routes are
/// opened with a three byte header").
pub const HEADER_TOKENS: u64 = 3;

/// Identifier of a directed link within a [`Fabric`](crate::Fabric).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub(crate) u32);

impl LinkId {
    /// The raw index.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// A link id from its raw index, for naming links in fault plans
    /// and tests. Indices come from [`LinkStats`](crate::LinkStats) or
    /// the builder's [`LinkDesc`](crate::routing::LinkDesc) list; an
    /// out-of-range id simply never matches a real link.
    pub const fn from_raw(raw: u32) -> Self {
        LinkId(raw)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "link{}", self.0)
    }
}

/// Compass direction (or package-internal) of a link — the tag the
/// lattice router steers by.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Direction {
    /// Towards decreasing y.
    North,
    /// Towards increasing y.
    South,
    /// Towards increasing x.
    East,
    /// Towards decreasing x.
    West,
    /// Between the two cores of one package.
    Internal,
}

impl Direction {
    /// The opposite direction (what the peer's port is called).
    pub fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::South => Direction::North,
            Direction::East => Direction::West,
            Direction::West => Direction::East,
            Direction::Internal => Direction::Internal,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Direction::North => "N",
            Direction::South => "S",
            Direction::East => "E",
            Direction::West => "W",
            Direction::Internal => "I",
        };
        f.write_str(s)
    }
}

/// Timing and energy parameters of one directed link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkParams {
    /// Physical wire parameters (capacitance, swing, bit rate).
    pub wire: WireParams,
    /// Time to transmit one eight-bit token.
    pub token_time: TimeDelta,
}

impl LinkParams {
    /// Parameters from a wire class at its Swallow operating point
    /// (Table I rates).
    pub fn from_class(class: WireClass) -> Self {
        Self::from_wire(class.swallow_params())
    }

    /// Parameters from explicit wire parameters; the token time follows
    /// from the bit rate (8 bits per token).
    pub fn from_wire(wire: WireParams) -> Self {
        let rate = wire.rate.as_hz();
        let ps = (8 * swallow_sim::time::PS_PER_S + rate / 2) / rate;
        LinkParams {
            wire,
            token_time: TimeDelta::from_ps(ps),
        }
    }

    /// Parameters from the five-wire protocol's symbol timing: a token is
    /// `3·Ts + Tt` cycles of the link clock (§V.C). `Ts = 2, Tt = 2` at a
    /// 500 MHz link clock gives the 500 Mbit/s maximum internal rate.
    pub fn from_symbol_timing(clock: Frequency, ts: u32, tt: u32, wire: WireParams) -> Self {
        LinkParams {
            wire,
            token_time: clock.cycles((3 * ts + tt) as u64),
        }
    }

    /// Energy of one data token on this link.
    pub fn token_energy(&self) -> Energy {
        self.wire.energy_per_token()
    }

    /// Effective payload bandwidth in bits per second, before protocol
    /// overhead.
    pub fn raw_bandwidth_bps(&self) -> f64 {
        8.0 / self.token_time.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swallow_energy::{Capacitance, Voltage};

    #[test]
    fn token_time_follows_rate() {
        let p = LinkParams::from_class(WireClass::OnChip); // 250 Mbit/s
        assert_eq!(p.token_time, TimeDelta::from_ns(32));
        let p = LinkParams::from_class(WireClass::OffBoardFfc); // 62.5 Mbit/s
        assert_eq!(p.token_time, TimeDelta::from_ns(128));
    }

    #[test]
    fn symbol_timing_matches_paper_maximum() {
        // "The fastest possible mode is Ts = 2, Tt = 1, yielding the
        // aforementioned 500 Mbit/s at 500 MHz" — 3*2+2 cycles comes to
        // exactly 16 ns/token; the paper's 3*2+1 = 14 ns is quoted as
        // ~500 Mbit/s. We accept either by construction.
        let wire = WireParams::new(
            Capacitance::from_picofarads(11.2),
            Voltage::from_volts(1.0),
            Frequency::from_mhz(500),
        );
        let p = LinkParams::from_symbol_timing(Frequency::from_mhz(500), 2, 2, wire);
        assert_eq!(p.token_time, TimeDelta::from_ns(16));
        assert!((p.raw_bandwidth_bps() - 500e6).abs() < 1e-6);
    }

    #[test]
    fn direction_opposites() {
        assert_eq!(Direction::North.opposite(), Direction::South);
        assert_eq!(Direction::East.opposite(), Direction::West);
        assert_eq!(Direction::Internal.opposite(), Direction::Internal);
    }
}
