//! The switching fabric.
//!
//! One switch per core (§IV.D); switches are connected by directed
//! [`links`](crate::link) and exchange eight-bit tokens. The model is
//! token-accurate:
//!
//! * **Wormhole routing**: an output link is *owned* by the flow (source
//!   channel end) whose packet is crossing it, from the three-token route
//!   header until an END/PAUSE control token passes. A route that is never
//!   closed becomes a dedicated circuit (§V.B).
//! * **Credit flow control**: a token is only launched when the receiving
//!   side has buffer space for it (window = [`RX_CAPACITY`]); head-of-line
//!   blocking in the input queues is what produces the contention effects
//!   of §V.D.
//! * **Link aggregation**: when the router offers several links in one
//!   direction, a new packet takes the first link not owned by another
//!   flow.
//! * **Energy**: every token (header included) charges the wire-class
//!   energy from Table I to its link.
//!
//! The fabric is advanced by [`Fabric::step`], typically once per core
//! clock; token rates are enforced by per-link `busy_until` timestamps, so
//! the step cadence only bounds reaction latency, not bandwidth.

use crate::endpoints::CoreEndpoints;
use crate::link::{Direction, LinkId, LinkParams, HEADER_TOKENS};
use crate::routing::{LinkDesc, Router};
use std::collections::{HashMap, VecDeque};
use swallow_energy::Energy;
use swallow_isa::{ControlToken, NodeId, ResType, ResourceId, Token};
use swallow_sim::{
    ByteReader, ByteWriter, CodecError, Time, TimeDelta, TraceEvent, TraceSink, Tracer,
};

/// Receive-buffer capacity per link input port (the credit window).
pub const RX_CAPACITY: usize = 8;
/// Capacity of the core-local loopback queue.
pub const LOOPBACK_CAPACITY: usize = 8;
/// Latency of the core-local loopback path (§V.C: data reaches the network
/// hardware in three core cycles; a core-local word lands in ≈50 ns
/// including instruction overhead).
pub const LOOPBACK_DELAY: TimeDelta = TimeDelta::from_ns(6);
/// Consecutive failed launch attempts after which a link is declared
/// dead (persistent-error escalation): the switch gives up retrying and
/// reports the link for rerouting, like a cable whose errors never stop.
pub const MAX_LINK_RETRIES: u32 = 16;

struct Link {
    from: NodeId,
    to: NodeId,
    dir: Direction,
    params: LinkParams,
    busy_until: Time,
    owner: Option<u32>,
    /// Tokens on the wire: (arrival time, token, flow, destination).
    /// The destination is captured at injection — like the route header
    /// on real hardware — so a later `setd` on the source chanend cannot
    /// divert tokens already in flight.
    in_flight: VecDeque<(Time, Token, u32, ResourceId)>,
    /// Tokens received, awaiting forwarding by the `to` switch.
    rx: VecDeque<(Token, u32, ResourceId)>,
    data_tokens: u64,
    ctrl_tokens: u64,
    header_tokens: u64,
    energy: Energy,
    busy_time: TimeDelta,
    /// True while the link is unplugged (scheduled fault or retry
    /// escalation): it accepts no launches, but in-flight and queued
    /// tokens drain normally — the cable is cut between packets.
    down: bool,
    /// Launches before this instant are detected as corrupt and retried.
    corrupt_until: Time,
    /// Data tokens launched before this instant are lost on the wire.
    drop_until: Time,
    /// Consecutive failed launch attempts (escalates at
    /// [`MAX_LINK_RETRIES`]).
    retry_streak: u32,
    retransmits: u64,
    dropped_tokens: u64,
}

impl Link {
    /// Remaining credit: tokens we may launch without overrunning the
    /// receiver.
    fn credit(&self) -> usize {
        RX_CAPACITY.saturating_sub(self.in_flight.len() + self.rx.len())
    }
}

/// Public per-link statistics snapshot.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkStats {
    /// Link identity.
    pub id: LinkId,
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Compass tag.
    pub dir: Direction,
    /// Payload (data) tokens carried.
    pub data_tokens: u64,
    /// Control tokens carried.
    pub ctrl_tokens: u64,
    /// Route-header tokens carried.
    pub header_tokens: u64,
    /// Energy dissipated on the wires.
    pub energy: Energy,
    /// Total time the link spent transmitting.
    pub busy_time: TimeDelta,
    /// Tokens retransmitted after a detected corruption (energy spent,
    /// counted in `energy`/`busy_time`, payload re-sent later).
    pub retransmits: u64,
    /// Data tokens lost in a drop window.
    pub dropped_tokens: u64,
    /// True while the link is unplugged.
    pub down: bool,
}

impl LinkStats {
    /// Energy per *payload* bit actually delivered (headers amortised in).
    pub fn energy_per_payload_bit(&self) -> Energy {
        let bits = self.data_tokens * 8;
        if bits == 0 {
            Energy::ZERO
        } else {
            Energy::from_joules(self.energy.as_joules() / bits as f64)
        }
    }
}

enum TxResult {
    Started,
    Busy,
    Unroutable,
    /// The token was launched into a drop window and lost on the wire:
    /// the sender's view is identical to [`TxResult::Started`] (energy
    /// spent, queue popped), the payload never lands.
    Dropped,
}

/// What the link's error-detection model says about a launch attempt.
enum LaunchGate {
    Clear,
    Retry,
    Drop,
}

/// Builds a [`Fabric`].
///
/// ```
/// use swallow_noc::{FabricBuilder, Direction, LinkParams, TableRouter};
/// use swallow_energy::WireClass;
/// use swallow_isa::NodeId;
///
/// let mut b = FabricBuilder::new(2);
/// b.link_two_way(
///     NodeId(0),
///     NodeId(1),
///     Direction::East,
///     LinkParams::from_class(WireClass::OnChip),
/// );
/// let router = TableRouter::shortest_paths(2, b.link_descs());
/// let fabric = b.build(Box::new(router));
/// assert_eq!(fabric.link_count(), 2);
/// ```
pub struct FabricBuilder {
    nodes: usize,
    links: Vec<Link>,
    descs: Vec<LinkDesc>,
}

impl FabricBuilder {
    /// A fabric over `nodes` switches (node ids `0..nodes`).
    pub fn new(nodes: usize) -> Self {
        FabricBuilder {
            nodes,
            links: Vec::new(),
            descs: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Adds one directed link.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn link_one_way(
        &mut self,
        from: NodeId,
        to: NodeId,
        dir: Direction,
        params: LinkParams,
    ) -> LinkId {
        assert!(
            (from.raw() as usize) < self.nodes && (to.raw() as usize) < self.nodes,
            "link endpoint out of range"
        );
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            from,
            to,
            dir,
            params,
            busy_until: Time::ZERO,
            owner: None,
            in_flight: VecDeque::new(),
            rx: VecDeque::new(),
            data_tokens: 0,
            ctrl_tokens: 0,
            header_tokens: 0,
            energy: Energy::ZERO,
            busy_time: TimeDelta::ZERO,
            down: false,
            corrupt_until: Time::ZERO,
            drop_until: Time::ZERO,
            retry_streak: 0,
            retransmits: 0,
            dropped_tokens: 0,
        });
        self.descs.push(LinkDesc { id, from, to, dir });
        id
    }

    /// Adds a link pair `a→b` (tagged `dir`) and `b→a` (opposite tag).
    pub fn link_two_way(
        &mut self,
        a: NodeId,
        b: NodeId,
        dir: Direction,
        params: LinkParams,
    ) -> (LinkId, LinkId) {
        let ab = self.link_one_way(a, b, dir, params);
        let ba = self.link_one_way(b, a, dir.opposite(), params);
        (ab, ba)
    }

    /// The topology so far (for router construction).
    pub fn link_descs(&self) -> &[LinkDesc] {
        &self.descs
    }

    /// Finalises the fabric with a routing strategy.
    pub fn build(self, router: Box<dyn Router>) -> Fabric {
        let mut incoming = vec![Vec::new(); self.nodes];
        let mut outgoing = vec![Vec::new(); self.nodes];
        for d in &self.descs {
            outgoing[d.from.raw() as usize].push(d.id);
            incoming[d.to.raw() as usize].push(d.id);
        }
        Fabric {
            nodes: self.nodes,
            links: self.links,
            incoming,
            outgoing,
            router,
            loopback: (0..self.nodes).map(|_| VecDeque::new()).collect(),
            dest_owner: HashMap::new(),
            sticky: HashMap::new(),
            unroutable: 0,
            in_network: 0,
            tx_scratch: Vec::new(),
            tracer: Tracer::Off,
            escalated: Vec::new(),
            delivered_data: 0,
        }
    }
}

/// The live network.
pub struct Fabric {
    nodes: usize,
    links: Vec<Link>,
    incoming: Vec<Vec<LinkId>>,
    outgoing: Vec<Vec<LinkId>>,
    router: Box<dyn Router>,
    /// Core-local deliveries in flight: (arrival, dest chanend, token, flow).
    loopback: Vec<VecDeque<(Time, u8, Token, u32)>>,
    /// Per destination chanend: the flow whose packet currently owns
    /// delivery (wormhole ownership of the final hop). Key: node<<8 | ch.
    dest_owner: HashMap<u32, u32>,
    /// Sticky link binding: once a flow has carried a packet towards a
    /// destination over some link out of a switch, its later packets to
    /// the same destination use the same link. This preserves a channel's
    /// token order end-to-end (XS1 channels are serial); link aggregation
    /// balances *distinct* flows across parallel links, which is exactly
    /// how §V.B describes its use.
    sticky: HashMap<(u32, NodeId, NodeId), LinkId>,
    unroutable: u64,
    /// Tokens currently inside the network (on a wire, in a receive
    /// queue, or in a loopback queue). Maintained incrementally so
    /// idleness checks and the fast-forward event query are O(1) when
    /// the network is empty.
    in_network: usize,
    /// Reusable buffer for the per-node injection scan (avoids a heap
    /// allocation per step).
    tx_scratch: Vec<u8>,
    /// Trace sink for [`TraceEvent::LinkTransit`] records. The fabric is
    /// only stepped from the control thread (serially, even under the
    /// parallel engine), so one sink covers every link deterministically.
    tracer: Tracer,
    /// Links whose retry streak crossed [`MAX_LINK_RETRIES`] and were
    /// declared down; drained by the board layer, which reroutes around
    /// them and books the failure.
    escalated: Vec<LinkId>,
    /// Data tokens delivered into a destination chanend (loopback and
    /// link paths alike) — the numerator of the delivered-token rate.
    delivered_data: u64,
}

impl Fabric {
    /// Number of switches.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Number of directed links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Tokens dropped because no route existed (should stay zero on a
    /// well-formed system; asserted by tests).
    pub fn unroutable_tokens(&self) -> u64 {
        self.unroutable
    }

    /// True when no token is on a wire, in a receive queue or in a
    /// loopback queue. O(1): the population is counted incrementally.
    pub fn is_idle(&self) -> bool {
        debug_assert_eq!(
            self.in_network,
            self.links
                .iter()
                .map(|l| l.in_flight.len() + l.rx.len())
                .sum::<usize>()
                + self.loopback.iter().map(|q| q.len()).sum::<usize>(),
            "in-network token counter out of sync"
        );
        self.in_network == 0
    }

    /// Number of tokens currently inside the network. O(1).
    pub fn tokens_in_network(&self) -> usize {
        self.in_network
    }

    /// The conservative-PDES lookahead of this fabric: the minimum time a
    /// token injected at any switch needs before it can land at *another*
    /// node. A token's wire time is `3·Ts + Tt` link-clock cycles per hop
    /// (§V.C), so this is the fastest link's token time — any event one
    /// node causes at another is at least this far in its future, which is
    /// what lets the parallel engine advance disjoint shards independently
    /// for an epoch of this length.
    ///
    /// The core-local loopback path (≈6 ns) is deliberately excluded: a
    /// loopback token can only reach the node that sent it, so it never
    /// crosses a shard boundary (shards are whole nodes or coarser). The
    /// engine handles it by reconciling the sending core itself.
    ///
    /// Returns `None` for a fabric with no links (single isolated node).
    pub fn min_cross_shard_latency(&self) -> Option<TimeDelta> {
        self.links.iter().map(|l| l.params.token_time).min()
    }

    /// All-pairs minimum routed token latency between switches, in
    /// picoseconds: entry `i * node_count + j` is the smallest sum of
    /// per-hop token times over any path of *live* (not-down) links from
    /// `i` to `j`, `0` on the diagonal and `u64::MAX` when no live path
    /// exists. This refines [`Fabric::min_cross_shard_latency`] per pair:
    /// a token leaving `i` cannot land at `j` earlier than `dist(i, j)`
    /// after its emission, whatever route the router picks, because every
    /// hop costs at least its link's token time and forwarding only adds
    /// delay. Off-board FFC hops (4× the on-chip token time, Table I)
    /// therefore give distant pairs far longer conservative horizons than
    /// the single global minimum.
    ///
    /// The matrix is a property of the live topology only — it must be
    /// recomputed whenever a link goes down or comes back up (fault
    /// injection, retry escalation, recovery), alongside the route
    /// recompute the board layer already performs. A *stale-down* matrix
    /// (computed before a link died) is still conservative — removing a
    /// link can only lengthen real latencies — but a stale-up one is not.
    ///
    /// Cost: one Dijkstra per source over the live adjacency, so roughly
    /// `O(nodes · links · log nodes)`; intended for topology-change
    /// cadence, not per-epoch use.
    pub fn min_latency_matrix_ps(&self) -> Vec<u64> {
        let n = self.nodes;
        // Live adjacency, cheapest parallel link per (from, to) pair.
        let mut adj: Vec<Vec<(u32, u64)>> = vec![Vec::new(); n];
        for link in &self.links {
            if link.down {
                continue;
            }
            let from = link.from.raw() as usize;
            let to = link.to.raw() as u32;
            let w = link.params.token_time.as_ps();
            match adj[from].iter_mut().find(|(t, _)| *t == to) {
                Some((_, best)) => *best = (*best).min(w),
                None => adj[from].push((to, w)),
            }
        }
        let mut dist = vec![u64::MAX; n * n];
        let mut heap = std::collections::BinaryHeap::new();
        for src in 0..n {
            let row = &mut dist[src * n..(src + 1) * n];
            row[src] = 0;
            heap.clear();
            heap.push(std::cmp::Reverse((0u64, src as u32)));
            while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
                if d > row[u as usize] {
                    continue;
                }
                for &(v, w) in &adj[u as usize] {
                    let nd = d + w;
                    if nd < row[v as usize] {
                        row[v as usize] = nd;
                        heap.push(std::cmp::Reverse((nd, v)));
                    }
                }
            }
        }
        dist
    }

    /// The earliest instant at which the fabric itself has work to do,
    /// given no further core activity: `Some(now)` when tokens are
    /// already deliverable or queued at a switch, the earliest wire /
    /// loopback arrival otherwise, and `None` when the network is empty.
    ///
    /// This is the network half of the fast-forward contract: strictly
    /// before the returned instant, [`Fabric::step`] without new core
    /// traffic is a no-op.
    pub fn next_event_at(&self, now: Time) -> Option<Time> {
        if self.in_network == 0 {
            return None;
        }
        let mut earliest: Option<Time> = None;
        for link in &self.links {
            if !link.rx.is_empty() {
                // Queued at the switch: forwarding/delivery can progress
                // (or is head-of-line blocked and must be retried) now.
                return Some(now);
            }
            if let Some(&(arrival, ..)) = link.in_flight.front() {
                if arrival <= now {
                    return Some(now);
                }
                earliest = Some(earliest.map_or(arrival, |e: Time| e.min(arrival)));
            }
        }
        for queue in &self.loopback {
            if let Some(&(arrival, ..)) = queue.front() {
                if arrival <= now {
                    return Some(now);
                }
                earliest = Some(earliest.map_or(arrival, |e: Time| e.min(arrival)));
            }
        }
        earliest
    }

    /// Replaces the fabric's trace sink.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The fabric's trace sink.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Per-link statistics.
    pub fn link_stats(&self) -> impl Iterator<Item = LinkStats> + '_ {
        self.links.iter().enumerate().map(|(i, l)| LinkStats {
            id: LinkId(i as u32),
            from: l.from,
            to: l.to,
            dir: l.dir,
            data_tokens: l.data_tokens,
            ctrl_tokens: l.ctrl_tokens,
            header_tokens: l.header_tokens,
            energy: l.energy,
            busy_time: l.busy_time,
            retransmits: l.retransmits,
            dropped_tokens: l.dropped_tokens,
            down: l.down,
        })
    }

    /// Takes a link out of service ("hot-unplug"). New launches are
    /// refused, wormhole routes bound to it are unbound so their flows
    /// re-open over another link, and tokens already on the wire or in
    /// the receive queue drain normally. Idempotent; an out-of-range id
    /// is ignored. Returns true when the link state changed.
    pub fn set_link_down(&mut self, lid: LinkId) -> bool {
        let Some(link) = self.links.get_mut(lid.0 as usize) else {
            return false;
        };
        if link.down {
            return false;
        }
        link.down = true;
        link.owner = None;
        link.retry_streak = 0;
        self.sticky.retain(|_, &mut bound| bound != lid);
        true
    }

    /// Puts a downed link back in service. Idempotent; out-of-range ids
    /// are ignored. Returns true when the link state changed.
    pub fn set_link_up(&mut self, lid: LinkId) -> bool {
        let Some(link) = self.links.get_mut(lid.0 as usize) else {
            return false;
        };
        let was_down = link.down;
        link.down = false;
        link.retry_streak = 0;
        was_down
    }

    /// True while the link is out of service.
    pub fn link_is_down(&self, lid: LinkId) -> bool {
        self.links.get(lid.0 as usize).is_some_and(|link| link.down)
    }

    /// Opens a corruption window on a link: every launch strictly before
    /// `until` is detected as corrupt and retried (energy spent, payload
    /// re-sent). Extends, never shortens, an existing window.
    pub fn set_link_corrupt_until(&mut self, lid: LinkId, until: Time) {
        if let Some(link) = self.links.get_mut(lid.0 as usize) {
            link.corrupt_until = link.corrupt_until.max(until);
        }
    }

    /// Opens a drop window on a link: data tokens launched strictly
    /// before `until` are lost on the wire (control tokens are retried
    /// instead, so routes still close). Extends an existing window.
    pub fn set_link_drop_until(&mut self, lid: LinkId, until: Time) {
        if let Some(link) = self.links.get_mut(lid.0 as usize) {
            link.drop_until = link.drop_until.max(until);
        }
    }

    /// Replaces the routing strategy — the board layer's hook for
    /// recomputing tables around dead links. Sticky flow bindings and
    /// wormhole ownerships survive: flows already crossing a live link
    /// keep it, new packets follow the new tables.
    pub fn set_router(&mut self, router: Box<dyn Router>) {
        self.router = router;
    }

    /// True when a retry escalation is waiting to be handled.
    pub fn has_escalations(&self) -> bool {
        !self.escalated.is_empty()
    }

    /// Drains the links declared dead by retry escalation into `out`
    /// (each already marked down; the caller reroutes and books them).
    pub fn take_escalated(&mut self, out: &mut Vec<LinkId>) {
        out.append(&mut self.escalated);
    }

    /// Total tokens retransmitted after detected corruptions.
    pub fn total_retransmits(&self) -> u64 {
        self.links.iter().map(|l| l.retransmits).sum()
    }

    /// Total data tokens lost in drop windows.
    pub fn total_dropped_tokens(&self) -> u64 {
        self.links.iter().map(|l| l.dropped_tokens).sum()
    }

    /// Total data tokens delivered into destination chanends.
    pub fn delivered_data_tokens(&self) -> u64 {
        self.delivered_data
    }

    /// Total wire energy dissipated so far.
    pub fn total_energy(&self) -> Energy {
        self.links.iter().map(|l| l.energy).sum()
    }

    /// Total wire energy attributable to links transmitting *from* a node
    /// (how the board charges network energy to nodes).
    pub fn energy_from_node(&self, node: NodeId) -> Energy {
        self.outgoing[node.raw() as usize]
            .iter()
            .map(|&id| self.links[id.0 as usize].energy)
            .sum()
    }

    /// Advances the fabric to `now`: lands arrivals, forwards queued
    /// tokens, injects core traffic and delivers to cores.
    pub fn step<E: CoreEndpoints>(&mut self, now: Time, cores: &mut E) {
        if self.in_network > 0 {
            self.land_arrivals(now);
            self.deliver_loopback(now, cores);
            self.forward_rx(now, cores);
        }
        self.inject_from_cores(now, cores);
    }

    fn land_arrivals(&mut self, now: Time) {
        for link in &mut self.links {
            while let Some(&(arrival, token, flow, dest)) = link.in_flight.front() {
                if arrival <= now && link.rx.len() < RX_CAPACITY {
                    link.rx.push_back((token, flow, dest));
                    link.in_flight.pop_front();
                } else {
                    break;
                }
            }
        }
    }

    fn deliver_loopback<E: CoreEndpoints>(&mut self, now: Time, cores: &mut E) {
        for node in 0..self.nodes {
            while let Some(&(arrival, chanend, token, flow)) = self.loopback[node].front() {
                if arrival <= now
                    && Self::try_deliver(
                        &mut self.dest_owner,
                        cores,
                        NodeId(node as u16),
                        chanend,
                        token,
                        flow,
                    )
                {
                    self.loopback[node].pop_front();
                    self.in_network -= 1;
                    if matches!(token, Token::Data(_)) {
                        self.delivered_data += 1;
                    }
                } else {
                    break;
                }
            }
        }
    }

    /// Delivers one token into a destination chanend, honouring the
    /// per-chanend packet ownership: once a flow's token lands, the
    /// chanend belongs to that flow until its END/PAUSE arrives (the
    /// final-hop half of wormhole routing — packets never interleave at
    /// the receiver).
    fn try_deliver<E: CoreEndpoints>(
        dest_owner: &mut HashMap<u32, u32>,
        cores: &mut E,
        node: NodeId,
        chanend: u8,
        token: Token,
        flow: u32,
    ) -> bool {
        let key = (node.raw() as u32) << 8 | chanend as u32;
        if let Some(&owner) = dest_owner.get(&key) {
            if owner != flow {
                return false; // another packet holds the chanend
            }
        }
        if !cores.can_accept(node, chanend, 1) || !cores.deliver(node, chanend, token) {
            return false;
        }
        if token.closes_route() {
            dest_owner.remove(&key);
        } else {
            dest_owner.insert(key, flow);
        }
        true
    }

    fn forward_rx<E: CoreEndpoints>(&mut self, now: Time, cores: &mut E) {
        for node in 0..self.nodes {
            for i in 0..self.incoming[node].len() {
                let lid = self.incoming[node][i];
                while let Some(&(token, flow, dest)) = self.links[lid.0 as usize].rx.front() {
                    if dest.node().raw() as usize == node {
                        if Self::try_deliver(
                            &mut self.dest_owner,
                            cores,
                            dest.node(),
                            dest.index(),
                            token,
                            flow,
                        ) {
                            self.links[lid.0 as usize].rx.pop_front();
                            self.in_network -= 1;
                            if matches!(token, Token::Data(_)) {
                                self.delivered_data += 1;
                            }
                        } else {
                            break; // head-of-line blocked on the core
                        }
                    } else {
                        match self.try_transmit(now, NodeId(node as u16), token, flow, dest) {
                            TxResult::Started | TxResult::Dropped => {
                                self.links[lid.0 as usize].rx.pop_front();
                                self.in_network -= 1;
                            }
                            TxResult::Busy => break,
                            TxResult::Unroutable => {
                                self.links[lid.0 as usize].rx.pop_front();
                                self.in_network -= 1;
                                self.unroutable += 1;
                            }
                        }
                    }
                }
            }
        }
    }

    fn inject_from_cores<E: CoreEndpoints>(&mut self, now: Time, cores: &mut E) {
        let mut pending = std::mem::take(&mut self.tx_scratch);
        for node in 0..self.nodes {
            let node_id = NodeId(node as u16);
            if !cores.has_tx_pending(node_id) {
                continue;
            }
            pending.clear();
            cores.for_each_tx_pending(node_id, &mut |ch| pending.push(ch));
            for &chanend in &pending {
                while let Some((dest, token)) = cores.tx_front(node_id, chanend) {
                    let flow = ResourceId::new(node_id, chanend, ResType::Chanend).raw();
                    if dest.node() == node_id {
                        // Core-local: loopback path, no serial link.
                        if self.loopback[node].len() < LOOPBACK_CAPACITY {
                            cores.tx_pop(node_id, chanend);
                            self.loopback[node].push_back((
                                now + LOOPBACK_DELAY,
                                dest.index(),
                                token,
                                flow,
                            ));
                            self.in_network += 1;
                        } else {
                            break;
                        }
                    } else {
                        match self.try_transmit(now, node_id, token, flow, dest) {
                            TxResult::Started | TxResult::Dropped => {
                                cores.tx_pop(node_id, chanend);
                            }
                            TxResult::Busy => break,
                            TxResult::Unroutable => {
                                cores.tx_pop(node_id, chanend);
                                self.unroutable += 1;
                            }
                        }
                    }
                }
            }
        }
        self.tx_scratch = pending;
    }

    fn try_transmit(
        &mut self,
        now: Time,
        at: NodeId,
        token: Token,
        flow: u32,
        dest: ResourceId,
    ) -> TxResult {
        let candidates = self.router.candidates(at, dest.node());
        if candidates.is_empty() {
            return TxResult::Unroutable;
        }
        // A flow is bound to one link per switch for its lifetime: the
        // link its first packet took. Without this, two packets of one
        // channel could race over parallel aggregated links and arrive
        // interleaved — XS1 channels are strictly serial.
        if let Some(&bound) = self.sticky.get(&(flow, at, dest.node())) {
            if self.links[bound.0 as usize].down {
                // The bound link died under the flow: unbind it and fall
                // through to fresh selection below. The rebind re-opens
                // the route with a full three-token header — the energy
                // cost of the reroute is charged where it is spent.
                self.sticky.remove(&(flow, at, dest.node()));
                let link = &mut self.links[bound.0 as usize];
                if link.owner == Some(flow) {
                    link.owner = None;
                }
            } else {
                let link = &self.links[bound.0 as usize];
                return match link.owner {
                    Some(owner) if owner == flow => {
                        if self.can_launch(bound, now) {
                            self.commit_launch(bound, now, token, flow, dest, false)
                        } else {
                            TxResult::Busy
                        }
                    }
                    Some(_) => TxResult::Busy, // another packet holds our link
                    None => {
                        if self.can_launch(bound, now) {
                            self.bind_and_launch(bound, now, at, token, flow, dest)
                        } else {
                            TxResult::Busy
                        }
                    }
                };
            }
        }
        // First packet of this flow here (or a rebind after its link
        // died): take the first free link ("the next unused link", §V.B)
        // and bind to it. A retry-gated attempt leaves the faulty link
        // busy for a token time, so the next attempt naturally picks the
        // following aggregated link if one is free.
        for lid in candidates.iter() {
            let link = &self.links[lid.0 as usize];
            if !link.down && link.owner.is_none() && self.can_launch(lid, now) {
                return self.bind_and_launch(lid, now, at, token, flow, dest);
            }
        }
        TxResult::Busy
    }

    /// What the error-detection model says about launching `token` on
    /// `lid` at `now`, charging the cost of a failed attempt. A corrupt
    /// launch spends one token's wire time and energy and will be
    /// retried by the caller's next step; [`MAX_LINK_RETRIES`]
    /// consecutive failures declare the link dead (escalation).
    fn launch_gate(&mut self, lid: LinkId, now: Time, token: Token) -> LaunchGate {
        let link = &mut self.links[lid.0 as usize];
        if now < link.drop_until && matches!(token, Token::Data(_)) {
            return LaunchGate::Drop;
        }
        if now < link.corrupt_until || now < link.drop_until {
            // Corrupt window — or a control token in a drop window,
            // which is retried rather than lost so routes still close
            // (a lost END would wedge the wormhole forever).
            link.retransmits += 1;
            link.retry_streak += 1;
            link.energy += link.params.token_energy();
            link.busy_time += link.params.token_time;
            link.busy_until = now + link.params.token_time;
            let streak = link.retry_streak;
            if self.tracer.is_enabled() {
                self.tracer.emit(
                    now,
                    TraceEvent::LinkRetry {
                        link: lid.0,
                        streak,
                    },
                );
            }
            if streak >= MAX_LINK_RETRIES {
                // Persistent errors: give up on the link. Ownership and
                // sticky bindings are cleared here; the board layer
                // drains `escalated`, reroutes and books the failure.
                self.set_link_down(lid);
                self.escalated.push(lid);
            }
            return LaunchGate::Retry;
        }
        link.retry_streak = 0;
        LaunchGate::Clear
    }

    /// Launches on an unowned link, binding ownership and the sticky
    /// flow association first — unless the launch gate refuses, in which
    /// case nothing is bound and the caller retries later.
    fn bind_and_launch(
        &mut self,
        lid: LinkId,
        now: Time,
        at: NodeId,
        token: Token,
        flow: u32,
        dest: ResourceId,
    ) -> TxResult {
        match self.launch_gate(lid, now, token) {
            LaunchGate::Retry => TxResult::Busy,
            gate => {
                self.links[lid.0 as usize].owner = Some(flow);
                self.sticky.insert((flow, at, dest.node()), lid);
                self.launch(lid, now, token, flow, dest, true);
                self.finish_gated(gate, lid)
            }
        }
    }

    /// Launches on a link the flow already owns, subject to the gate.
    fn commit_launch(
        &mut self,
        lid: LinkId,
        now: Time,
        token: Token,
        flow: u32,
        dest: ResourceId,
        header: bool,
    ) -> TxResult {
        match self.launch_gate(lid, now, token) {
            LaunchGate::Retry => TxResult::Busy,
            gate => {
                self.launch(lid, now, token, flow, dest, header);
                self.finish_gated(gate, lid)
            }
        }
    }

    /// After a gated launch: on a drop, take the token back off the wire
    /// — the sender saw a normal launch (energy spent, ownership moved),
    /// the payload is gone.
    fn finish_gated(&mut self, gate: LaunchGate, lid: LinkId) -> TxResult {
        match gate {
            LaunchGate::Clear => TxResult::Started,
            LaunchGate::Retry => unreachable!("retries never reach launch"),
            LaunchGate::Drop => {
                let link = &mut self.links[lid.0 as usize];
                link.in_flight.pop_back();
                link.dropped_tokens += 1;
                self.in_network -= 1;
                if self.tracer.is_enabled() {
                    let at = self.links[lid.0 as usize].busy_until;
                    self.tracer.emit(at, TraceEvent::TokenDrop { link: lid.0 });
                }
                TxResult::Dropped
            }
        }
    }

    fn can_launch(&self, lid: LinkId, now: Time) -> bool {
        let link = &self.links[lid.0 as usize];
        !link.down && link.busy_until <= now && link.credit() >= 1
    }

    fn launch(
        &mut self,
        lid: LinkId,
        now: Time,
        token: Token,
        flow: u32,
        dest: ResourceId,
        header: bool,
    ) {
        let link = &mut self.links[lid.0 as usize];
        let mut start = now;
        if header {
            // Three header tokens open the route at this hop (§V.B).
            let header_time = link.params.token_time * HEADER_TOKENS;
            start = now + header_time;
            link.header_tokens += HEADER_TOKENS;
            link.energy += link.params.token_energy() * HEADER_TOKENS as f64;
            link.busy_time += header_time;
        }
        let arrival = start + link.params.token_time;
        link.in_flight.push_back((arrival, token, flow, dest));
        self.in_network += 1;
        let link = &mut self.links[lid.0 as usize];
        link.busy_until = arrival;
        link.busy_time += link.params.token_time;
        link.energy += link.params.token_energy();
        match token {
            Token::Data(_) => link.data_tokens += 1,
            Token::Ctrl(_) => link.ctrl_tokens += 1,
        }
        if token.closes_route() {
            link.owner = None;
        }
        if self.tracer.is_enabled() {
            let link = &self.links[lid.0 as usize];
            self.tracer.emit(
                start,
                TraceEvent::LinkTransit {
                    link: lid.0,
                    from: link.from.0,
                    to: link.to.0,
                    ctrl: matches!(token, Token::Ctrl(_)),
                    busy: link.params.token_time,
                },
            );
        }
    }

    // --- snapshot ---------------------------------------------------------

    /// Serializes the mutable (architectural) state of the fabric into
    /// `w`: per-link wire/queue/fault state and statistics, loopback
    /// queues, wormhole ownerships and sticky flow bindings. The static
    /// topology (endpoints, directions, wire parameters) and the router
    /// are *not* written — both are rebuilt deterministically from the
    /// machine configuration on restore — and neither are the derived
    /// in-network counter, scratch buffers, tracer or undrained
    /// escalations (snapshots are taken at step boundaries, where the
    /// escalation queue is empty).
    pub fn encode_state(&self, w: &mut ByteWriter) {
        debug_assert!(
            self.escalated.is_empty(),
            "snapshot with undrained link escalations"
        );
        w.u64(self.links.len() as u64);
        for link in &self.links {
            w.u64(link.busy_until.as_ps());
            match link.owner {
                None => w.u8(0),
                Some(flow) => {
                    w.u8(1);
                    w.u32(flow);
                }
            }
            w.u64(link.in_flight.len() as u64);
            for &(arrival, token, flow, dest) in &link.in_flight {
                w.u64(arrival.as_ps());
                write_token(w, token);
                w.u32(flow);
                w.u32(dest.raw());
            }
            w.u64(link.rx.len() as u64);
            for &(token, flow, dest) in &link.rx {
                write_token(w, token);
                w.u32(flow);
                w.u32(dest.raw());
            }
            w.u64(link.data_tokens);
            w.u64(link.ctrl_tokens);
            w.u64(link.header_tokens);
            w.f64_bits(link.energy.as_joules());
            w.u64(link.busy_time.as_ps());
            w.bool(link.down);
            w.u64(link.corrupt_until.as_ps());
            w.u64(link.drop_until.as_ps());
            w.u32(link.retry_streak);
            w.u64(link.retransmits);
            w.u64(link.dropped_tokens);
        }
        w.u64(self.loopback.len() as u64);
        for queue in &self.loopback {
            w.u64(queue.len() as u64);
            for &(arrival, chanend, token, flow) in queue {
                w.u64(arrival.as_ps());
                w.u8(chanend);
                write_token(w, token);
                w.u32(flow);
            }
        }
        // HashMaps are written in sorted key order so identical fabric
        // state always serializes to identical bytes.
        let mut owners: Vec<(u32, u32)> = self.dest_owner.iter().map(|(&k, &v)| (k, v)).collect();
        owners.sort_unstable();
        w.u64(owners.len() as u64);
        for (key, flow) in owners {
            w.u32(key);
            w.u32(flow);
        }
        let mut sticky: Vec<((u32, NodeId, NodeId), LinkId)> =
            self.sticky.iter().map(|(&k, &v)| (k, v)).collect();
        sticky.sort_unstable_by_key(|&((flow, from, to), _)| (flow, from.0, to.0));
        w.u64(sticky.len() as u64);
        for ((flow, from, to), lid) in sticky {
            w.u32(flow);
            w.u16(from.0);
            w.u16(to.0);
            w.u32(lid.0);
        }
        w.u64(self.unroutable);
        w.u64(self.delivered_data);
    }

    /// Overlays the state written by [`Fabric::encode_state`] onto this
    /// fabric, which must have been rebuilt from the same topology (the
    /// link and node counts are validated). The in-network token counter
    /// is recomputed from the restored queues.
    pub fn restore_state(&mut self, r: &mut ByteReader<'_>) -> Result<(), CodecError> {
        let links = r.len_prefixed(1)?;
        if links != self.links.len() {
            return Err(CodecError::Invalid("fabric link count mismatch"));
        }
        for link in &mut self.links {
            link.busy_until = Time::from_ps(r.u64()?);
            link.owner = match r.u8()? {
                0 => None,
                1 => Some(r.u32()?),
                _ => return Err(CodecError::Invalid("link owner tag out of range")),
            };
            let in_flight = r.len_prefixed(14)?;
            if in_flight > RX_CAPACITY {
                return Err(CodecError::Invalid("link wire queue overfull"));
            }
            link.in_flight.clear();
            for _ in 0..in_flight {
                let arrival = Time::from_ps(r.u64()?);
                let token = read_token(r)?;
                let flow = r.u32()?;
                let dest = ResourceId::from_raw(r.u32()?);
                link.in_flight.push_back((arrival, token, flow, dest));
            }
            let rx = r.len_prefixed(6)?;
            if link.in_flight.len() + rx > RX_CAPACITY {
                return Err(CodecError::Invalid("link receive queue overfull"));
            }
            link.rx.clear();
            for _ in 0..rx {
                let token = read_token(r)?;
                let flow = r.u32()?;
                let dest = ResourceId::from_raw(r.u32()?);
                link.rx.push_back((token, flow, dest));
            }
            link.data_tokens = r.u64()?;
            link.ctrl_tokens = r.u64()?;
            link.header_tokens = r.u64()?;
            link.energy = Energy::from_joules(r.f64_bits()?);
            link.busy_time = TimeDelta::from_ps(r.u64()?);
            link.down = r.bool()?;
            link.corrupt_until = Time::from_ps(r.u64()?);
            link.drop_until = Time::from_ps(r.u64()?);
            link.retry_streak = r.u32()?;
            link.retransmits = r.u64()?;
            link.dropped_tokens = r.u64()?;
        }
        let nodes = r.len_prefixed(1)?;
        if nodes != self.nodes {
            return Err(CodecError::Invalid("fabric node count mismatch"));
        }
        for queue in &mut self.loopback {
            let len = r.len_prefixed(12)?;
            if len > LOOPBACK_CAPACITY {
                return Err(CodecError::Invalid("loopback queue overfull"));
            }
            queue.clear();
            for _ in 0..len {
                let arrival = Time::from_ps(r.u64()?);
                let chanend = r.u8()?;
                let token = read_token(r)?;
                let flow = r.u32()?;
                queue.push_back((arrival, chanend, token, flow));
            }
        }
        let owners = r.len_prefixed(8)?;
        self.dest_owner.clear();
        for _ in 0..owners {
            let key = r.u32()?;
            let flow = r.u32()?;
            if self.dest_owner.insert(key, flow).is_some() {
                return Err(CodecError::Invalid("duplicate chanend ownership"));
            }
        }
        let sticky = r.len_prefixed(12)?;
        self.sticky.clear();
        for _ in 0..sticky {
            let flow = r.u32()?;
            let from = NodeId(r.u16()?);
            let to = NodeId(r.u16()?);
            let lid = LinkId(r.u32()?);
            if lid.0 as usize >= self.links.len() {
                return Err(CodecError::Invalid("sticky binding to unknown link"));
            }
            if self.sticky.insert((flow, from, to), lid).is_some() {
                return Err(CodecError::Invalid("duplicate sticky binding"));
            }
        }
        self.unroutable = r.u64()?;
        self.delivered_data = r.u64()?;
        self.in_network = self
            .links
            .iter()
            .map(|l| l.in_flight.len() + l.rx.len())
            .sum::<usize>()
            + self.loopback.iter().map(|q| q.len()).sum::<usize>();
        self.escalated.clear();
        Ok(())
    }
}

fn write_token(w: &mut ByteWriter, t: Token) {
    match t {
        Token::Data(b) => {
            w.u8(0);
            w.u8(b);
        }
        Token::Ctrl(ct) => {
            w.u8(1);
            w.u8(ct.0);
        }
    }
}

fn read_token(r: &mut ByteReader<'_>) -> Result<Token, CodecError> {
    match r.u8()? {
        0 => Ok(Token::Data(r.u8()?)),
        1 => Ok(Token::Ctrl(ControlToken(r.u8()?))),
        _ => Err(CodecError::Invalid("token tag out of range")),
    }
}

impl std::fmt::Debug for Fabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fabric")
            .field("nodes", &self.nodes)
            .field("links", &self.links.len())
            .field("unroutable", &self.unroutable)
            .finish()
    }
}
