//! Routing strategies.
//!
//! XS1 switches route by software-configured tables, so "new routing
//! algorithms can simply be programmed" (§V.A). The [`Router`] trait is
//! that programmability; two constructors cover the repository's needs:
//!
//! * [`TableRouter::shortest_paths`] — breadth-first shortest paths over
//!   any topology (used for irregular/experimental wirings),
//! * [`TableRouter::vertical_first`] — the paper's dimension-order
//!   strategy for the unwoven lattice: route vertically first; a node on
//!   the horizontal layer needing a vertical move crosses to its package
//!   partner over the internal link, giving at most two layer transitions
//!   per route (§V.A).

use crate::link::{Direction, LinkId};
use std::collections::VecDeque;
use swallow_isa::NodeId;

/// Up to four candidate output links, in preference order. Multiple
/// candidates model link aggregation: "multiple links can be assigned to
/// the same routing direction, where a new communication will use the
/// next unused link" (§V.B).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Candidates {
    links: [u32; 4],
    len: u8,
}

impl Candidates {
    /// No route.
    pub const EMPTY: Candidates = Candidates {
        links: [0; 4],
        len: 0,
    };

    /// Appends a candidate. Returns false (and keeps the set unchanged)
    /// when all four slots are taken — the XS1 switch aggregates at most
    /// four links per direction, so overflow means the caller offered
    /// more equal-preference routes than the hardware can hold and the
    /// surplus is deliberately truncated.
    pub fn push(&mut self, link: LinkId) -> bool {
        if (self.len as usize) < self.links.len() {
            self.links[self.len as usize] = link.raw();
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when unroutable.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates candidates in preference order.
    pub fn iter(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.links[..self.len as usize]
            .iter()
            .map(|&raw| LinkId(raw))
    }
}

impl FromIterator<LinkId> for Candidates {
    fn from_iter<I: IntoIterator<Item = LinkId>>(iter: I) -> Self {
        let mut c = Candidates::EMPTY;
        for l in iter {
            // Truncation past four is the hardware's aggregation cap.
            let _ = c.push(l);
        }
        c
    }
}

/// A routing strategy: which output links carry traffic from `at` towards
/// `dest`.
pub trait Router {
    /// Candidate output links at `at` for traffic to `dest`, best first.
    /// Empty means unroutable (or `at == dest`).
    fn candidates(&self, at: NodeId, dest: NodeId) -> Candidates;
}

/// Which lattice layer a node's switch serves (§V.A: "one layer routes in
/// the vertical dimension and the other in the horizontal").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Layer {
    /// Owns North/South external links.
    Vertical,
    /// Owns East/West external links.
    Horizontal,
}

/// Position of a node in the unwoven lattice.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Coord {
    /// Package column.
    pub x: u16,
    /// Package row.
    pub y: u16,
    /// Which layer of the lattice the node belongs to.
    pub layer: Layer,
}

/// Topology description a router builder consumes: one entry per directed
/// link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkDesc {
    /// The link id in the fabric being built.
    pub id: LinkId,
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Compass tag.
    pub dir: Direction,
}

/// A fully tabled router: `(node, dest) → candidates`.
#[derive(Clone, Debug)]
pub struct TableRouter {
    nodes: usize,
    table: Vec<Candidates>,
}

impl TableRouter {
    /// Builds an all-pairs shortest-path table by breadth-first search.
    /// Equal-cost next hops become aggregated candidates (up to four).
    pub fn shortest_paths(nodes: usize, links: &[LinkDesc]) -> Self {
        let mut table = vec![Candidates::EMPTY; nodes * nodes];
        // Distance from every node to `dest` over the directed graph:
        // BFS on reversed edges from dest.
        let mut rev: Vec<Vec<(usize, LinkId)>> = vec![Vec::new(); nodes]; // to -> [(from, link)]
        let mut fwd: Vec<Vec<(usize, LinkId)>> = vec![Vec::new(); nodes]; // from -> [(to, link)]
        for l in links {
            rev[l.to.raw() as usize].push((l.from.raw() as usize, l.id));
            fwd[l.from.raw() as usize].push((l.to.raw() as usize, l.id));
        }
        for dest in 0..nodes {
            let mut dist = vec![u32::MAX; nodes];
            dist[dest] = 0;
            let mut queue = VecDeque::from([dest]);
            while let Some(n) = queue.pop_front() {
                for &(prev, _) in &rev[n] {
                    if dist[prev] == u32::MAX {
                        dist[prev] = dist[n] + 1;
                        queue.push_back(prev);
                    }
                }
            }
            for at in 0..nodes {
                if at == dest || dist[at] == u32::MAX {
                    continue;
                }
                let cands: Candidates = fwd[at]
                    .iter()
                    // saturating: a neighbour that cannot reach `dest`
                    // at all has dist MAX and must never qualify.
                    .filter(|&&(next, _)| dist[next].saturating_add(1) == dist[at])
                    .map(|&(_, id)| id)
                    .collect();
                table[at * nodes + dest] = cands;
            }
        }
        TableRouter { nodes, table }
    }

    /// Builds the vertical-first dimension-order table for an unwoven
    /// lattice. `coords[n]` gives node `n`'s position; links must be
    /// tagged with their compass [`Direction`].
    ///
    /// At each node the rule is (§V.A):
    /// 1. vertical displacement pending → North/South if this node is on
    ///    the vertical layer, else the internal link;
    /// 2. otherwise horizontal displacement pending → East/West on the
    ///    horizontal layer, else internal;
    /// 3. otherwise (same package) → internal to reach the partner core.
    pub fn vertical_first(coords: &[Coord], links: &[LinkDesc]) -> Self {
        let nodes = coords.len();
        let mut by_dir: Vec<Vec<(Direction, LinkId)>> = vec![Vec::new(); nodes];
        for l in links {
            by_dir[l.from.raw() as usize].push((l.dir, l.id));
        }
        let pick = |node: usize, want: Direction| -> Candidates {
            by_dir[node]
                .iter()
                .filter(|&&(d, _)| d == want)
                .map(|&(_, id)| id)
                .collect()
        };
        let mut table = vec![Candidates::EMPTY; nodes * nodes];
        for at in 0..nodes {
            let c = coords[at];
            for dest in 0..nodes {
                if at == dest {
                    continue;
                }
                let d = coords[dest];
                let want = if d.y != c.y {
                    match c.layer {
                        Layer::Vertical => {
                            if d.y < c.y {
                                Direction::North
                            } else {
                                Direction::South
                            }
                        }
                        Layer::Horizontal => Direction::Internal,
                    }
                } else if d.x != c.x {
                    match c.layer {
                        Layer::Horizontal => {
                            if d.x > c.x {
                                Direction::East
                            } else {
                                Direction::West
                            }
                        }
                        Layer::Vertical => Direction::Internal,
                    }
                } else {
                    // Same package, other layer.
                    Direction::Internal
                };
                table[at * nodes + dest] = pick(at, want);
            }
        }
        TableRouter { nodes, table }
    }

    /// Overrides the candidates for one `(at, dest)` pair — the hook for
    /// experimenting with custom routes.
    pub fn set(&mut self, at: NodeId, dest: NodeId, candidates: Candidates) {
        let idx = at.raw() as usize * self.nodes + dest.raw() as usize;
        self.table[idx] = candidates;
    }

    /// Routes every node's traffic for `dest` along its existing route to
    /// `via`, with `direct` as the final hop from `via` to `dest`.
    ///
    /// This is how an *edge appendage* — a node hanging off one lattice
    /// port, like the Ethernet bridge on its reserved South header —
    /// becomes reachable under dimension-order routing: vertical-first
    /// would steer everything South immediately, but South links below
    /// the last lattice row exist only in the appendage's column, leaving
    /// the destination unroutable (and its traffic silently dropped) from
    /// every other column. Aliasing through the attach node reuses the
    /// already-correct core-to-core table and touches no other route.
    pub fn alias_dest_via(&mut self, dest: NodeId, via: NodeId, direct: Candidates) {
        let (d, v) = (dest.raw() as usize, via.raw() as usize);
        for at in 0..self.nodes {
            self.table[at * self.nodes + d] = if at == v {
                direct
            } else if at == d {
                Candidates::EMPTY
            } else {
                self.table[at * self.nodes + v]
            };
        }
    }
}

impl Router for TableRouter {
    fn candidates(&self, at: NodeId, dest: NodeId) -> Candidates {
        let (at, dest) = (at.raw() as usize, dest.raw() as usize);
        if at >= self.nodes || dest >= self.nodes {
            return Candidates::EMPTY;
        }
        self.table[at * self.nodes + dest]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(id: u32, from: u16, to: u16, dir: Direction) -> LinkDesc {
        LinkDesc {
            id: LinkId(id),
            from: NodeId(from),
            to: NodeId(to),
            dir,
        }
    }

    #[test]
    fn candidates_cap_at_four() {
        let mut c = Candidates::EMPTY;
        for i in 0..6 {
            let accepted = c.push(LinkId(i));
            assert_eq!(accepted, i < 4, "push {i}");
        }
        assert_eq!(c.len(), 4);
        let ids: Vec<u32> = c.iter().map(|l| l.raw()).collect();
        assert_eq!(ids, [0, 1, 2, 3]);
    }

    #[test]
    fn push_overflow_leaves_set_unchanged() {
        let mut c = Candidates::EMPTY;
        for i in 0..4 {
            assert!(c.push(LinkId(i)));
        }
        let before = c;
        assert!(!c.push(LinkId(99)));
        assert_eq!(c, before, "rejected push must not mutate");
        // FromIterator silently truncates at the aggregation cap.
        let collected: Candidates = (0..8).map(LinkId).collect();
        assert_eq!(collected, before);
    }

    #[test]
    fn shortest_paths_on_a_line() {
        // 0 -> 1 -> 2 and back.
        let links = [
            desc(0, 0, 1, Direction::East),
            desc(1, 1, 0, Direction::West),
            desc(2, 1, 2, Direction::East),
            desc(3, 2, 1, Direction::West),
        ];
        let r = TableRouter::shortest_paths(3, &links);
        let hop = |a: u16, b: u16| {
            r.candidates(NodeId(a), NodeId(b))
                .iter()
                .next()
                .map(|l| l.raw())
        };
        assert_eq!(hop(0, 2), Some(0));
        assert_eq!(hop(1, 2), Some(2));
        assert_eq!(hop(2, 0), Some(3));
        assert_eq!(hop(0, 0), None);
    }

    #[test]
    fn shortest_paths_aggregates_equal_cost() {
        // Two parallel links 0 -> 1.
        let links = [
            desc(0, 0, 1, Direction::East),
            desc(1, 0, 1, Direction::East),
        ];
        let r = TableRouter::shortest_paths(2, &links);
        assert_eq!(r.candidates(NodeId(0), NodeId(1)).len(), 2);
    }

    #[test]
    fn unroutable_is_empty() {
        let links = [desc(0, 0, 1, Direction::East)];
        let r = TableRouter::shortest_paths(3, &links);
        assert!(r.candidates(NodeId(1), NodeId(0)).is_empty());
        assert!(r.candidates(NodeId(0), NodeId(2)).is_empty());
    }

    /// A 2×1-package lattice: package 0 at x=0, package 1 at x=1, nodes
    /// {0,1} in package 0 (vertical, horizontal) and {2,3} in package 1.
    fn mini_lattice() -> (Vec<Coord>, Vec<LinkDesc>) {
        let coords = vec![
            Coord {
                x: 0,
                y: 0,
                layer: Layer::Vertical,
            },
            Coord {
                x: 0,
                y: 0,
                layer: Layer::Horizontal,
            },
            Coord {
                x: 1,
                y: 0,
                layer: Layer::Vertical,
            },
            Coord {
                x: 1,
                y: 0,
                layer: Layer::Horizontal,
            },
        ];
        let links = vec![
            // Internal pairs (both directions).
            desc(0, 0, 1, Direction::Internal),
            desc(1, 1, 0, Direction::Internal),
            desc(2, 2, 3, Direction::Internal),
            desc(3, 3, 2, Direction::Internal),
            // Horizontal layer connects the packages.
            desc(4, 1, 3, Direction::East),
            desc(5, 3, 1, Direction::West),
        ];
        (coords, links)
    }

    #[test]
    fn vertical_first_crosses_layers_when_needed() {
        let (coords, links) = mini_lattice();
        let r = TableRouter::vertical_first(&coords, &links);
        // Vertical-layer node 0 to horizontal-layer node 3 in the other
        // package: must first go internal (to node 1), then East.
        let first = r
            .candidates(NodeId(0), NodeId(3))
            .iter()
            .next()
            .expect("routed");
        assert_eq!(first.raw(), 0, "internal link first");
        let second = r
            .candidates(NodeId(1), NodeId(3))
            .iter()
            .next()
            .expect("routed");
        assert_eq!(second.raw(), 4, "then East");
        // Horizontal to horizontal, same row: straight East, no layer
        // transition at all.
        assert_eq!(
            r.candidates(NodeId(1), NodeId(3))
                .iter()
                .next()
                .expect("routed")
                .raw(),
            4
        );
        // Same package: internal.
        assert_eq!(
            r.candidates(NodeId(2), NodeId(3))
                .iter()
                .next()
                .expect("routed")
                .raw(),
            2
        );
    }

    #[test]
    fn alias_dest_reuses_routes_to_the_attach_node() {
        // Mini lattice plus an appendage node 4 hanging South off node 0.
        let (mut coords, mut links) = mini_lattice();
        coords.push(Coord {
            x: 0,
            y: 1,
            layer: Layer::Vertical,
        });
        links.push(desc(6, 0, 4, Direction::South));
        links.push(desc(7, 4, 0, Direction::North));
        let mut r = TableRouter::vertical_first(&coords, &links);
        // Before the alias: node 3 cannot reach the appendage (it wants
        // to go vertical via its partner node 2, which has no South link).
        assert!(r.candidates(NodeId(2), NodeId(4)).is_empty());
        let mut direct = Candidates::EMPTY;
        direct.push(LinkId(6));
        r.alias_dest_via(NodeId(4), NodeId(0), direct);
        // Now node 3 routes to the appendage exactly as it routes to the
        // attach node 0 (West first), and the attach node takes the hop.
        assert_eq!(
            r.candidates(NodeId(3), NodeId(4)),
            r.candidates(NodeId(3), NodeId(0))
        );
        assert_eq!(
            r.candidates(NodeId(0), NodeId(4))
                .iter()
                .next()
                .expect("direct hop")
                .raw(),
            6
        );
        // Self-route stays empty; routes between core nodes untouched.
        assert!(r.candidates(NodeId(4), NodeId(4)).is_empty());
        assert_eq!(
            r.candidates(NodeId(0), NodeId(3))
                .iter()
                .next()
                .expect("routed")
                .raw(),
            0
        );
    }

    #[test]
    fn set_overrides_a_route() {
        let (coords, links) = mini_lattice();
        let mut r = TableRouter::vertical_first(&coords, &links);
        let mut c = Candidates::EMPTY;
        c.push(LinkId(1));
        r.set(NodeId(1), NodeId(3), c);
        assert_eq!(
            r.candidates(NodeId(1), NodeId(3))
                .iter()
                .next()
                .expect("set")
                .raw(),
            1
        );
    }
}
