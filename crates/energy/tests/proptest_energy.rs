//! Property tests of the energy models: unit arithmetic, monotonicity of
//! the power models, DVFS interpolation invariants.

use swallow_energy::{
    CorePowerModel, DvfsTable, Energy, EnergyLedger, NodeCategory, Power, Smps, Voltage,
};
use swallow_sim::{Frequency, TimeDelta};
use swallow_testkit::proptest::prelude::*;

proptest! {
    /// Power × time = energy; energy / time = power (round trip).
    #[test]
    fn power_energy_round_trip(mw in 0.0f64..10_000.0, us in 1u64..1_000_000) {
        let p = Power::from_milliwatts(mw);
        let span = TimeDelta::from_us(us);
        let e = p * span;
        let back = e.over(span);
        prop_assert!((back.as_milliwatts() - mw).abs() < 1e-9 * mw.max(1.0));
    }

    /// Eq. 1 power is strictly increasing in frequency and always above
    /// the idle line, which is always above static power.
    #[test]
    fn core_power_is_monotonic(mhz1 in 10u64..500, mhz2 in 10u64..500) {
        prop_assume!(mhz1 < mhz2);
        let m = CorePowerModel::swallow();
        let (f1, f2) = (Frequency::from_mhz(mhz1), Frequency::from_mhz(mhz2));
        prop_assert!(m.eq1_power(f1).as_watts() < m.eq1_power(f2).as_watts());
        prop_assert!(m.idle_power(f1).as_watts() < m.eq1_power(f1).as_watts());
        prop_assert!(m.static_power().as_watts() <= m.idle_power(f1).as_watts());
    }

    /// Partial load interpolates monotonically between idle and Eq. 1.
    #[test]
    fn partial_load_is_monotonic(mhz in 10u64..500) {
        let m = CorePowerModel::swallow();
        let f = Frequency::from_mhz(mhz);
        let mut last = 0.0;
        for threads in 0..=4 {
            let p = m.partial_load_power(f, threads).as_watts();
            prop_assert!(p >= last);
            last = p;
        }
    }

    /// DVFS voltage is monotone in frequency and clamped to the measured
    /// end points; scaled power never exceeds the 1 V power.
    #[test]
    fn dvfs_voltage_monotone(mhz1 in 1u64..800, mhz2 in 1u64..800) {
        prop_assume!(mhz1 <= mhz2);
        let t = DvfsTable::swallow();
        let v1 = t.voltage_at(Frequency::from_mhz(mhz1)).as_volts();
        let v2 = t.voltage_at(Frequency::from_mhz(mhz2)).as_volts();
        prop_assert!(v1 <= v2 + 1e-12);
        prop_assert!((0.60..=0.95).contains(&v1));
        let p = Power::from_milliwatts(100.0);
        let scaled = t.scale_power(p, Frequency::from_mhz(mhz1));
        prop_assert!(scaled.as_watts() <= p.as_watts());
    }

    /// Voltage scaling of slot energies is exactly quadratic.
    #[test]
    fn slot_energy_scales_with_v_squared(volts in 0.3f64..1.2) {
        let nominal = CorePowerModel::swallow();
        let scaled = nominal.at_voltage(Voltage::from_volts(volts));
        for class in swallow_isa::EnergyClass::ALL {
            let a = nominal.slot_energy(class).as_joules();
            let b = scaled.slot_energy(class).as_joules();
            if a > 0.0 {
                prop_assert!((b / a - volts * volts).abs() < 1e-9);
            }
        }
    }

    /// SMPS input power exceeds output and loss is consistent.
    #[test]
    fn smps_conservation(mw in 0.0f64..20_000.0) {
        let s = Smps::swallow_core_rail();
        let out = Power::from_milliwatts(mw);
        let input = s.input_power(out);
        prop_assert!(input.as_watts() >= out.as_watts());
        let sum = (out + s.loss(out)).as_watts();
        prop_assert!((input.as_watts() - sum).abs() < 1e-12);
    }

    /// Ledger fractions always sum to 1 for non-empty ledgers, and
    /// merging preserves totals.
    #[test]
    fn ledger_invariants(
        charges in proptest::collection::vec((0usize..5, 0.0f64..1e3), 1..40)
    ) {
        let mut a = EnergyLedger::new();
        let mut b = EnergyLedger::new();
        for (i, &(cat, nj)) in charges.iter().enumerate() {
            let target = if i % 2 == 0 { &mut a } else { &mut b };
            target.charge(NodeCategory::ALL[cat], Energy::from_nanojoules(nj));
        }
        let merged = a + b;
        let total = merged.total().as_joules();
        let parts: f64 = NodeCategory::ALL
            .iter()
            .map(|&c| merged.get(c).as_joules())
            .sum();
        prop_assert!((total - parts).abs() <= 1e-15 * total.max(1.0));
        if total > 0.0 {
            let fracs: f64 = NodeCategory::ALL.iter().map(|&c| merged.fraction(c)).sum();
            prop_assert!((fracs - 1.0).abs() < 1e-9);
        }
    }
}
