//! The per-core power and instruction-energy model.
//!
//! # Calibration
//!
//! The paper gives two mutually consistent anchors (§III.B, Fig. 3):
//!
//! * under heavy four-thread load: `Pc = 46 + 0.30·f` mW (Eq. 1) —
//!   193 mW at 500 MHz, 65 mW at 71 MHz;
//! * all threads idle: 113 mW at 500 MHz, 50 mW at 71 MHz, i.e. a clock
//!   tree / pipeline idle slope of ≈0.134 mW/MHz over the same 46 mW
//!   static floor.
//!
//! Dynamic power is `f · k`, so `k` is an energy *per core cycle*. The
//! XS1-L issues exactly one instruction per cycle (one pipeline slot), so
//! under full load every cycle is an active slot and
//!
//! ```text
//! k_loaded = k_idle + e_slot  ⇒  e_slot = 0.30 − 0.134 = 0.166 nJ
//! ```
//!
//! Per-instruction-class energies distribute that 0.166 nJ average with
//! the relative ordering measured by Kerrison et al. (TECS 2015): memory >
//! multiply > communication > ALU > branch > nop. The instruction mix
//! therefore moves a loaded core across the paper's workload-dependent
//! power range, and an under-threaded core (empty issue slots) burns only
//! the idle slope — which is what makes Eq. 2's thread scaling also an
//! *energy* statement.
//!
//! All energies scale with `V²` (`P = C·V²·f`), which is how the Fig. 4
//! DVFS savings are computed.

use crate::units::{Energy, Power, Voltage};
use swallow_isa::EnergyClass;
use swallow_sim::Frequency;

/// Static (leakage) power at the nominal 1 V, in milliwatts (Eq. 1 intercept).
pub const STATIC_MW: f64 = 46.0;
/// Idle dynamic energy per core cycle at 1 V, in nanojoules (Fig. 3 idle slope).
pub const IDLE_NJ_PER_CYCLE: f64 = 0.134;
/// Average extra energy per active issue slot at 1 V, in nanojoules
/// (Eq. 1 slope minus the idle slope: 0.30 − 0.134).
pub const ACTIVE_SLOT_NJ_AVG: f64 = 0.166;
/// The nominal core voltage of the shipped Swallow boards.
pub const NOMINAL_VOLTS: f64 = 1.0;

/// Fraction of the non-computational dynamic (clock-tree/idle) energy that
/// belongs to the on-die network interface — the switch, link serialisers
/// and channel-end clocking that run at core speed whether or not data
/// flows. Calibrated so a loaded node reproduces the Fig. 2 split
/// (computation 30 %, static 26 %, network interface 22 %).
pub const IDLE_NETWORK_FRACTION: f64 = 0.65;

/// Extra energy per active issue slot at 1 V, by instruction class, in
/// nanojoules. The [`HEAVY_MIX`] weighted average equals
/// [`ACTIVE_SLOT_NJ_AVG`], so Eq. 1 is recovered exactly under load.
fn class_slot_nj(class: EnergyClass) -> f64 {
    match class {
        EnergyClass::Idle => 0.030,
        EnergyClass::Branch => 0.110,
        EnergyClass::Alu => 0.140,
        EnergyClass::Resource => 0.140,
        EnergyClass::Comm => 0.185,
        EnergyClass::Mul => 0.210,
        EnergyClass::Mem => 0.230,
        // Per divider cycle; a divide occupies 32 of them.
        EnergyClass::Div => 0.070,
    }
}

/// Representative instruction mix of the paper's heavy-load benchmark, used
/// for closed-form power calculations: fractions of issue slots per class
/// (ALU-dominated with a realistic load/store and branch share).
pub const HEAVY_MIX: [(EnergyClass, f64); 5] = [
    (EnergyClass::Alu, 0.45),
    (EnergyClass::Mem, 0.25),
    (EnergyClass::Branch, 0.15),
    (EnergyClass::Mul, 0.05),
    (EnergyClass::Comm, 0.10),
];

/// The per-core power model.
///
/// ```
/// use swallow_energy::CorePowerModel;
/// use swallow_sim::Frequency;
///
/// let model = CorePowerModel::swallow();
/// let p = model.eq1_power(Frequency::from_mhz(500));
/// assert!((p.as_milliwatts() - 196.0).abs() < 0.5); // paper rounds to 193 mW
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CorePowerModel {
    static_mw: f64,
    idle_nj_per_cycle: f64,
    voltage: Voltage,
}

impl CorePowerModel {
    /// The model calibrated to the Swallow measurements (1 V nominal).
    pub fn swallow() -> Self {
        CorePowerModel {
            static_mw: STATIC_MW,
            idle_nj_per_cycle: IDLE_NJ_PER_CYCLE,
            voltage: Voltage::from_volts(NOMINAL_VOLTS),
        }
    }

    /// The same model at a different supply voltage (for DVFS studies).
    pub fn at_voltage(self, voltage: Voltage) -> Self {
        CorePowerModel { voltage, ..self }
    }

    /// The modelled supply voltage.
    pub fn voltage(&self) -> Voltage {
        self.voltage
    }

    /// `V²/V_nom²`, the factor every energy/power term scales by.
    fn v_scale(&self) -> f64 {
        self.voltage.squared() / (NOMINAL_VOLTS * NOMINAL_VOLTS)
    }

    /// Static (leakage) power at the configured voltage.
    pub fn static_power(&self) -> Power {
        Power::from_milliwatts(self.static_mw * self.v_scale())
    }

    /// Energy drawn by the clock tree and idle pipeline in one core cycle
    /// (consumed whether or not the issue slot is filled).
    pub fn idle_cycle_energy(&self) -> Energy {
        Energy::from_nanojoules(self.idle_nj_per_cycle * self.v_scale())
    }

    /// Extra energy of one *active* issue slot of the given class, on top
    /// of [`CorePowerModel::idle_cycle_energy`].
    pub fn slot_energy(&self, class: EnergyClass) -> Energy {
        Energy::from_nanojoules(class_slot_nj(class) * self.v_scale())
    }

    /// Average active-slot energy over [`HEAVY_MIX`]; equals
    /// [`ACTIVE_SLOT_NJ_AVG`] by calibration, making Eq. 1 exact.
    pub fn heavy_mix_average(&self) -> Energy {
        Energy::from_nanojoules(self.heavy_mix_nj() * self.v_scale())
    }

    fn heavy_mix_nj(&self) -> f64 {
        HEAVY_MIX
            .iter()
            .map(|&(class, frac)| class_slot_nj(class) * frac)
            .sum()
    }

    /// Closed-form Eq. 1: power of a core under heavy four-thread load
    /// (every issue slot active with the [`HEAVY_MIX`]).
    pub fn eq1_power(&self, f: Frequency) -> Power {
        let k = self.idle_nj_per_cycle + self.heavy_mix_nj();
        self.static_power() + Power::from_milliwatts(f.as_mhz_f64() * k * self.v_scale())
    }

    /// Closed-form idle power: all threads paused, clock running (the
    /// Fig. 3 "zero active threads" line).
    pub fn idle_power(&self, f: Frequency) -> Power {
        self.static_power()
            + Power::from_milliwatts(f.as_mhz_f64() * self.idle_nj_per_cycle * self.v_scale())
    }

    /// Closed-form power with `active` of the four issue slots filled by
    /// the heavy mix (Eq. 2's thread scaling as a power statement).
    pub fn partial_load_power(&self, f: Frequency, active_slots_of_4: u32) -> Power {
        let fill = (active_slots_of_4.min(4)) as f64 / 4.0;
        let k = self.idle_nj_per_cycle + fill * self.heavy_mix_nj();
        self.static_power() + Power::from_milliwatts(f.as_mhz_f64() * k * self.v_scale())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_eq1_anchors() {
        let m = CorePowerModel::swallow();
        // Eq. 1 predicts 196 mW at 500 MHz (the paper's prose rounds the
        // measurement to 193 mW) and 67.3 mW at 71 MHz (paper: 65 mW).
        let p500 = m.eq1_power(Frequency::from_mhz(500)).as_milliwatts();
        assert!((p500 - 196.0).abs() < 0.5, "p500 = {p500}");
        let p71 = m.eq1_power(Frequency::from_mhz(71)).as_milliwatts();
        assert!((p71 - 67.3).abs() < 0.5, "p71 = {p71}");
    }

    #[test]
    fn matches_fig3_idle_anchors() {
        let m = CorePowerModel::swallow();
        let p500 = m.idle_power(Frequency::from_mhz(500)).as_milliwatts();
        assert!((p500 - 113.0).abs() < 0.5, "idle p500 = {p500}");
        let p71 = m.idle_power(Frequency::from_mhz(71)).as_milliwatts();
        assert!((p71 - 55.5).abs() < 6.0, "idle p71 = {p71}"); // paper: ~50 mW
    }

    #[test]
    fn heavy_mix_average_matches_calibration() {
        let avg = CorePowerModel::swallow()
            .heavy_mix_average()
            .as_nanojoules();
        assert!(
            (avg - ACTIVE_SLOT_NJ_AVG).abs() < 1e-6,
            "heavy mix average {avg} nJ deviates from calibration"
        );
    }

    #[test]
    fn partial_load_interpolates_between_idle_and_eq1() {
        let m = CorePowerModel::swallow();
        let f = Frequency::from_mhz(400);
        assert_eq!(m.partial_load_power(f, 0), m.idle_power(f));
        assert_eq!(m.partial_load_power(f, 4), m.eq1_power(f));
        let p2 = m.partial_load_power(f, 2).as_watts();
        let mid = (m.idle_power(f).as_watts() + m.eq1_power(f).as_watts()) / 2.0;
        assert!((p2 - mid).abs() < 1e-12);
        // More than four threads do not increase throughput (Eq. 2), so
        // they cannot increase power either.
        assert_eq!(m.partial_load_power(f, 8), m.eq1_power(f));
    }

    #[test]
    fn class_ordering_follows_kerrison() {
        let m = CorePowerModel::swallow();
        let e = |c| m.slot_energy(c).as_nanojoules();
        assert!(e(EnergyClass::Idle) < e(EnergyClass::Branch));
        assert!(e(EnergyClass::Branch) < e(EnergyClass::Alu));
        assert!(e(EnergyClass::Alu) < e(EnergyClass::Comm));
        assert!(e(EnergyClass::Comm) < e(EnergyClass::Mul));
        assert!(e(EnergyClass::Mul) < e(EnergyClass::Mem));
    }

    #[test]
    fn voltage_scaling_is_quadratic() {
        let nominal = CorePowerModel::swallow();
        let low = nominal.at_voltage(Voltage::from_volts(0.6));
        let ratio = low.static_power().as_watts() / nominal.static_power().as_watts();
        assert!((ratio - 0.36).abs() < 1e-9);
        let ratio = low.slot_energy(EnergyClass::Mem).as_joules()
            / nominal.slot_energy(EnergyClass::Mem).as_joules();
        assert!((ratio - 0.36).abs() < 1e-9);
    }
}
