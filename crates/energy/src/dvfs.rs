//! Dynamic voltage and frequency scaling (Fig. 4).
//!
//! The shipped Swallow boards run at a fixed 1 V, but the paper measures
//! the minimum stable voltage at two operating points — 0.60 V at 71 MHz
//! and 0.95 V at 500 MHz — and computes the attainable DVFS savings from
//! `P = C·V²·f`. [`DvfsTable`] interpolates that voltage/frequency
//! relationship and applies the quadratic scaling.

use crate::units::{Power, Voltage};
use swallow_sim::Frequency;

/// A point on the measured minimum-voltage curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DvfsPoint {
    /// Clock frequency of the operating point.
    pub frequency: Frequency,
    /// Minimum stable core voltage at that frequency.
    pub voltage: Voltage,
}

/// The measured voltage/frequency table, linearly interpolated.
///
/// ```
/// use swallow_energy::DvfsTable;
/// use swallow_sim::Frequency;
///
/// let table = DvfsTable::swallow();
/// let v = table.voltage_at(Frequency::from_mhz(71));
/// assert!((v.as_volts() - 0.60).abs() < 1e-9);
/// let v = table.voltage_at(Frequency::from_mhz(500));
/// assert!((v.as_volts() - 0.95).abs() < 1e-9);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct DvfsTable {
    points: Vec<DvfsPoint>,
}

impl DvfsTable {
    /// The two experimentally determined Swallow operating points (§III.B).
    pub fn swallow() -> Self {
        DvfsTable::new(vec![
            DvfsPoint {
                frequency: Frequency::from_mhz(71),
                voltage: Voltage::from_volts(0.60),
            },
            DvfsPoint {
                frequency: Frequency::from_mhz(500),
                voltage: Voltage::from_volts(0.95),
            },
        ])
        .expect("static table is well-formed")
    }

    /// Builds a table from measured points.
    ///
    /// # Errors
    ///
    /// Returns `None` when fewer than one point is supplied or points are
    /// not strictly increasing in frequency.
    pub fn new(mut points: Vec<DvfsPoint>) -> Option<Self> {
        if points.is_empty() {
            return None;
        }
        points.sort_by_key(|p| p.frequency.as_hz());
        if points
            .windows(2)
            .any(|w| w[0].frequency.as_hz() == w[1].frequency.as_hz())
        {
            return None;
        }
        Some(DvfsTable { points })
    }

    /// The minimum stable voltage at `f`, linearly interpolated and
    /// clamped to the end points.
    pub fn voltage_at(&self, f: Frequency) -> Voltage {
        let hz = f.as_hz() as f64;
        let first = self.points.first().expect("non-empty");
        let last = self.points.last().expect("non-empty");
        if hz <= first.frequency.as_hz() as f64 {
            return first.voltage;
        }
        if hz >= last.frequency.as_hz() as f64 {
            return last.voltage;
        }
        for w in self.points.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            let lo_hz = lo.frequency.as_hz() as f64;
            let hi_hz = hi.frequency.as_hz() as f64;
            if hz <= hi_hz {
                let t = (hz - lo_hz) / (hi_hz - lo_hz);
                let volts =
                    lo.voltage.as_volts() + t * (hi.voltage.as_volts() - lo.voltage.as_volts());
                return Voltage::from_volts(volts);
            }
        }
        last.voltage
    }

    /// Scales a power measured at 1 V to the DVFS voltage for `f`
    /// (`P = C·V²·f`, with the same `f`, so only `V²` changes).
    pub fn scale_power(&self, power_at_1v: Power, f: Frequency) -> Power {
        power_at_1v * self.voltage_at(f).squared()
    }
}

/// Whether a core runs at a fixed voltage or tracks the DVFS table.
#[derive(Clone, Debug, PartialEq)]
pub enum VoltageScaling {
    /// Fixed supply (the shipped Swallow configuration: 1 V).
    Fixed(Voltage),
    /// Voltage follows frequency per the table (newer xCORE devices).
    Dvfs(DvfsTable),
}

impl VoltageScaling {
    /// The nominal fixed-1 V Swallow configuration.
    pub fn swallow_fixed() -> Self {
        VoltageScaling::Fixed(Voltage::from_volts(1.0))
    }

    /// The effective voltage at clock `f`.
    pub fn voltage_at(&self, f: Frequency) -> Voltage {
        match self {
            VoltageScaling::Fixed(v) => *v,
            VoltageScaling::Dvfs(table) => table.voltage_at(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolation_is_linear_between_anchors() {
        let t = DvfsTable::swallow();
        // Midpoint of 71..500 MHz = 285.5 MHz -> midpoint voltage 0.775 V.
        let v = t.voltage_at(Frequency::from_khz(285_500));
        assert!((v.as_volts() - 0.775).abs() < 1e-9, "v = {v}");
    }

    #[test]
    fn clamps_outside_measured_range() {
        let t = DvfsTable::swallow();
        assert_eq!(t.voltage_at(Frequency::from_mhz(10)).as_volts(), 0.60);
        assert_eq!(t.voltage_at(Frequency::from_mhz(600)).as_volts(), 0.95);
    }

    #[test]
    fn fig4_savings_at_71mhz() {
        // Fig. 4: at 71 MHz, scaling from 1 V to 0.6 V cuts power to 36 %.
        let t = DvfsTable::swallow();
        let p1v = Power::from_milliwatts(67.3); // Eq. 1 at 71 MHz
        let scaled = t.scale_power(p1v, Frequency::from_mhz(71));
        assert!((scaled.as_milliwatts() - 67.3 * 0.36).abs() < 1e-6);
    }

    #[test]
    fn rejects_degenerate_tables() {
        assert!(DvfsTable::new(vec![]).is_none());
        let p = DvfsPoint {
            frequency: Frequency::from_mhz(100),
            voltage: Voltage::from_volts(0.7),
        };
        assert!(DvfsTable::new(vec![p, p]).is_none());
    }

    #[test]
    fn voltage_scaling_selector() {
        let fixed = VoltageScaling::swallow_fixed();
        assert_eq!(fixed.voltage_at(Frequency::from_mhz(71)).as_volts(), 1.0);
        let dvfs = VoltageScaling::Dvfs(DvfsTable::swallow());
        assert_eq!(dvfs.voltage_at(Frequency::from_mhz(71)).as_volts(), 0.60);
    }
}
