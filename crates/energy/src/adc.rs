//! The power-measurement daughter-board (§II).
//!
//! Each slice exposes five shunt-resistor sense points (one per SMPS). The
//! measurement daughter-board amplifies the differential voltages and
//! digitises them at up to 2 MS/s for a single channel, or 1 MS/s when all
//! supplies are sampled simultaneously. Crucially, the samples can be
//! consumed *on the Swallow slice itself* — a program can measure its own
//! power and adapt — or streamed out over the Ethernet bridge.
//!
//! This module models the board's configuration limits and sample traces;
//! the live wiring to simulated supplies happens in `swallow-board`.

use crate::units::Power;
use std::fmt;
use swallow_sim::{Frequency, Time, TimeDelta};

/// Number of sense channels (one per SMPS: four 1 V rails + one 3.3 V rail).
pub const CHANNELS: usize = 5;
/// Maximum sample rate with a single channel enabled.
pub const MAX_SINGLE_RATE_HZ: u64 = 2_000_000;
/// Maximum sample rate with more than one channel enabled.
pub const MAX_SIMULTANEOUS_RATE_HZ: u64 = 1_000_000;

/// ADC configuration error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdcError {
    /// No channel was enabled.
    NoChannels,
    /// The requested rate exceeds the hardware capability.
    RateTooHigh {
        /// Requested sample rate.
        requested: Frequency,
        /// Maximum for the enabled channel count.
        limit: Frequency,
    },
}

impl fmt::Display for AdcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdcError::NoChannels => write!(f, "no ADC channel enabled"),
            AdcError::RateTooHigh { requested, limit } => {
                write!(f, "sample rate {requested} exceeds limit {limit}")
            }
        }
    }
}

impl std::error::Error for AdcError {}

/// A validated ADC configuration.
///
/// ```
/// use swallow_energy::AdcConfig;
/// use swallow_sim::Frequency;
///
/// // All five supplies at 1 MS/s is the fastest simultaneous mode.
/// let cfg = AdcConfig::new([true; 5], Frequency::from_mhz(1)).expect("valid");
/// assert_eq!(cfg.enabled_channels(), 5);
/// // 2 MS/s is only possible on a single channel.
/// assert!(AdcConfig::new([true; 5], Frequency::from_mhz(2)).is_err());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdcConfig {
    channels: [bool; CHANNELS],
    rate: Frequency,
}

impl AdcConfig {
    /// Validates and creates a configuration.
    ///
    /// # Errors
    ///
    /// [`AdcError::NoChannels`] when all channels are disabled;
    /// [`AdcError::RateTooHigh`] when `rate` exceeds 2 MS/s (one channel)
    /// or 1 MS/s (several channels).
    pub fn new(channels: [bool; CHANNELS], rate: Frequency) -> Result<Self, AdcError> {
        let enabled = channels.iter().filter(|&&c| c).count();
        if enabled == 0 {
            return Err(AdcError::NoChannels);
        }
        let limit_hz = if enabled == 1 {
            MAX_SINGLE_RATE_HZ
        } else {
            MAX_SIMULTANEOUS_RATE_HZ
        };
        if rate.as_hz() > limit_hz {
            return Err(AdcError::RateTooHigh {
                requested: rate,
                limit: Frequency::from_hz(limit_hz),
            });
        }
        Ok(AdcConfig { channels, rate })
    }

    /// All five channels at the fastest simultaneous rate.
    pub fn all_channels_max() -> Self {
        AdcConfig::new(
            [true; CHANNELS],
            Frequency::from_hz(MAX_SIMULTANEOUS_RATE_HZ),
        )
        .expect("static configuration is valid")
    }

    /// Single-channel capture at the fastest rate.
    pub fn single_channel_max(channel: usize) -> Option<Self> {
        if channel >= CHANNELS {
            return None;
        }
        let mut channels = [false; CHANNELS];
        channels[channel] = true;
        Some(
            AdcConfig::new(channels, Frequency::from_hz(MAX_SINGLE_RATE_HZ))
                .expect("static configuration is valid"),
        )
    }

    /// Number of enabled channels.
    pub fn enabled_channels(&self) -> usize {
        self.channels.iter().filter(|&&c| c).count()
    }

    /// Whether a channel is enabled.
    pub fn is_enabled(&self, channel: usize) -> bool {
        self.channels.get(channel).copied().unwrap_or(false)
    }

    /// The configured sample rate.
    pub fn rate(&self) -> Frequency {
        self.rate
    }

    /// The sampling period.
    pub fn period(&self) -> TimeDelta {
        self.rate.period()
    }
}

/// A captured power trace for one channel.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SampleTrace {
    samples: Vec<(Time, Power)>,
}

impl SampleTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        SampleTrace::default()
    }

    /// Appends a sample.
    pub fn push(&mut self, at: Time, power: Power) {
        self.samples.push((at, power));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples were captured.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Iterates `(time, power)` in capture order.
    pub fn iter(&self) -> impl Iterator<Item = (Time, Power)> + '_ {
        self.samples.iter().copied()
    }

    /// Arithmetic mean of the captured power (zero when empty).
    pub fn mean_power(&self) -> Power {
        if self.samples.is_empty() {
            return Power::ZERO;
        }
        let sum: f64 = self.samples.iter().map(|(_, p)| p.as_watts()).sum();
        Power::from_watts(sum / self.samples.len() as f64)
    }

    /// The largest captured power (zero when empty).
    pub fn peak_power(&self) -> Power {
        self.samples
            .iter()
            .map(|&(_, p)| p)
            .fold(Power::ZERO, |a, b| if b > a { b } else { a })
    }
}

/// The measurement daughter-board: a validated configuration plus one
/// trace per enabled channel.
#[derive(Clone, Debug, PartialEq)]
pub struct AdcBoard {
    config: AdcConfig,
    traces: [SampleTrace; CHANNELS],
    next_sample: Time,
}

impl AdcBoard {
    /// Creates a board with the given configuration.
    pub fn new(config: AdcConfig) -> Self {
        AdcBoard {
            config,
            traces: Default::default(),
            next_sample: Time::ZERO,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &AdcConfig {
        &self.config
    }

    /// The time at which the next sample is due.
    pub fn next_sample_due(&self) -> Time {
        self.next_sample
    }

    /// Records one simultaneous sample of all enabled channels.
    ///
    /// `powers` supplies the instantaneous power of each channel; disabled
    /// channels are skipped. Advances the due time by one sample period.
    pub fn sample(&mut self, at: Time, powers: &[Power; CHANNELS]) {
        for (ch, power) in powers.iter().enumerate() {
            if self.config.is_enabled(ch) {
                self.traces[ch].push(at, *power);
            }
        }
        self.next_sample = at + self.config.period();
    }

    /// The captured trace for a channel.
    pub fn trace(&self, channel: usize) -> Option<&SampleTrace> {
        self.traces.get(channel)
    }

    /// Sum of mean powers across enabled channels (the slice input power
    /// seen by the measurement system).
    pub fn total_mean_power(&self) -> Power {
        (0..CHANNELS)
            .filter(|&ch| self.config.is_enabled(ch))
            .map(|ch| self.traces[ch].mean_power())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_limits_follow_channel_count() {
        assert!(AdcConfig::new([true; 5], Frequency::from_mhz(1)).is_ok());
        assert!(AdcConfig::new([true; 5], Frequency::from_mhz(2)).is_err());
        let single = AdcConfig::single_channel_max(0).expect("channel 0 exists");
        assert_eq!(single.rate().as_hz(), 2_000_000);
        assert_eq!(AdcConfig::single_channel_max(5), None);
        assert_eq!(
            AdcConfig::new([false; 5], Frequency::from_mhz(1)),
            Err(AdcError::NoChannels)
        );
    }

    #[test]
    fn sampling_fills_only_enabled_channels() {
        let mut channels = [false; CHANNELS];
        channels[1] = true;
        channels[3] = true;
        let cfg = AdcConfig::new(channels, Frequency::from_khz(500)).expect("valid");
        let mut board = AdcBoard::new(cfg);
        let mut powers = [Power::ZERO; CHANNELS];
        powers[1] = Power::from_milliwatts(100.0);
        powers[3] = Power::from_milliwatts(50.0);
        board.sample(Time::ZERO, &powers);
        board.sample(Time::from_ps(2_000_000), &powers);
        assert_eq!(board.trace(1).expect("in range").len(), 2);
        assert_eq!(board.trace(0).expect("in range").len(), 0);
        assert!((board.total_mean_power().as_milliwatts() - 150.0).abs() < 1e-9);
    }

    #[test]
    fn next_sample_advances_by_period() {
        let cfg = AdcConfig::all_channels_max();
        let mut board = AdcBoard::new(cfg);
        board.sample(Time::ZERO, &[Power::ZERO; CHANNELS]);
        assert_eq!(board.next_sample_due(), Time::from_ps(1_000_000)); // 1 MS/s = 1 us
    }

    #[test]
    fn trace_statistics() {
        let mut trace = SampleTrace::new();
        assert_eq!(trace.mean_power(), Power::ZERO);
        trace.push(Time::ZERO, Power::from_milliwatts(10.0));
        trace.push(Time::from_ps(1), Power::from_milliwatts(30.0));
        assert!((trace.mean_power().as_milliwatts() - 20.0).abs() < 1e-9);
        assert!((trace.peak_power().as_milliwatts() - 30.0).abs() < 1e-9);
    }
}
