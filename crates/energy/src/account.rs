//! Per-node energy accounting (the Fig. 2 breakdown).
//!
//! Every joule spent in the simulator is attributed to one of the
//! categories the paper's Fig. 2 reports for a 260 mW node: computation &
//! memory operations (30 %), static (26 %), network interface (22 %),
//! DC-DC conversion & I/O (18 %) and other support logic (4 %).

use crate::units::{Energy, Power};
use std::fmt;
use std::ops::{Add, AddAssign};
use swallow_sim::TimeDelta;

/// Energy category of a Swallow node, matching Fig. 2's slices.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NodeCategory {
    /// Computation and memory operations (active issue slots).
    Compute,
    /// Static leakage plus non-computational dynamic power (clock tree).
    Static,
    /// Network interface: switch, links and channel ends.
    Network,
    /// DC-DC conversion losses and I/O rail.
    Supply,
    /// Other support logic.
    Other,
}

impl NodeCategory {
    /// All categories in Fig. 2 order.
    pub const ALL: [NodeCategory; 5] = [
        NodeCategory::Compute,
        NodeCategory::Static,
        NodeCategory::Network,
        NodeCategory::Supply,
        NodeCategory::Other,
    ];

    /// The label used in Fig. 2.
    pub const fn label(self) -> &'static str {
        match self {
            NodeCategory::Compute => "Computation & memory ops",
            NodeCategory::Static => "Static",
            NodeCategory::Network => "Network interface",
            NodeCategory::Supply => "DC-DC & I/O",
            NodeCategory::Other => "Other",
        }
    }

    /// A machine-readable identifier (CSV/JSON column names in the
    /// observability exporters).
    pub const fn short_name(self) -> &'static str {
        match self {
            NodeCategory::Compute => "compute",
            NodeCategory::Static => "static",
            NodeCategory::Network => "network",
            NodeCategory::Supply => "supply",
            NodeCategory::Other => "other",
        }
    }
}

impl fmt::Display for NodeCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// An energy ledger: joules accumulated per [`NodeCategory`].
///
/// ```
/// use swallow_energy::{Energy, EnergyLedger, NodeCategory};
/// let mut ledger = EnergyLedger::new();
/// ledger.charge(NodeCategory::Compute, Energy::from_nanojoules(10.0));
/// assert!((ledger.total().as_nanojoules() - 10.0).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyLedger {
    entries: [Energy; 5],
}

impl EnergyLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        EnergyLedger::default()
    }

    /// Charges energy to a category.
    pub fn charge(&mut self, category: NodeCategory, energy: Energy) {
        self.entries[category as usize] += energy;
    }

    /// Energy accumulated in one category.
    pub fn get(&self, category: NodeCategory) -> Energy {
        self.entries[category as usize]
    }

    /// Total energy across all categories.
    pub fn total(&self) -> Energy {
        self.entries.iter().copied().sum()
    }

    /// The fraction of total energy in `category` (0 when empty).
    pub fn fraction(&self, category: NodeCategory) -> f64 {
        let total = self.total().as_joules();
        if total == 0.0 {
            0.0
        } else {
            self.get(category).as_joules() / total
        }
    }

    /// Average power per category over a span.
    pub fn mean_power(&self, category: NodeCategory, span: TimeDelta) -> Power {
        self.get(category).over(span)
    }

    /// Iterates `(category, energy)` in Fig. 2 order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeCategory, Energy)> + '_ {
        NodeCategory::ALL.into_iter().map(|c| (c, self.get(c)))
    }

    /// Merges another ledger into this one, category-wise.
    ///
    /// This is the shard-merge primitive of the parallel engine: shard
    /// ledgers are merged in a fixed (shard-id) order, so the f64
    /// association — and therefore the result — is bit-identical from run
    /// to run regardless of host-thread scheduling. The accumulation is
    /// allocation-free: a ledger is a fixed five-entry array.
    pub fn merge(&mut self, other: &EnergyLedger) {
        for i in 0..self.entries.len() {
            self.entries[i] += other.entries[i];
        }
    }

    /// The raw `f64` bit patterns of every category, in Fig. 2 order —
    /// the snapshot codec's view. Round-trips through
    /// [`EnergyLedger::from_entry_bits`] bit-identically, which `as_joules`
    /// conversions would not guarantee for every NaN/subnormal pattern.
    pub fn entry_bits(&self) -> [u64; 5] {
        let mut out = [0u64; 5];
        for (slot, e) in out.iter_mut().zip(self.entries.iter()) {
            *slot = e.as_joules().to_bits();
        }
        out
    }

    /// Rebuilds a ledger from [`EnergyLedger::entry_bits`] output.
    pub fn from_entry_bits(bits: [u64; 5]) -> Self {
        let mut out = EnergyLedger::new();
        for (slot, b) in out.entries.iter_mut().zip(bits) {
            *slot = Energy::from_joules(f64::from_bits(b));
        }
        out
    }

    /// The category-wise difference `self - earlier`: the energy accrued
    /// since the `earlier` snapshot was taken. Used to turn per-core
    /// ledgers into per-shard epoch deltas.
    pub fn delta_since(&self, earlier: &EnergyLedger) -> EnergyLedger {
        let mut out = EnergyLedger::new();
        for i in 0..self.entries.len() {
            out.entries[i] =
                Energy::from_joules(self.entries[i].as_joules() - earlier.entries[i].as_joules());
        }
        out
    }
}

impl Add for EnergyLedger {
    type Output = EnergyLedger;
    fn add(self, rhs: EnergyLedger) -> EnergyLedger {
        let mut out = self;
        out += rhs;
        out
    }
}

impl AddAssign for EnergyLedger {
    fn add_assign(&mut self, rhs: EnergyLedger) {
        for i in 0..self.entries.len() {
            self.entries[i] += rhs.entries[i];
        }
    }
}

impl std::iter::Sum for EnergyLedger {
    fn sum<I: Iterator<Item = EnergyLedger>>(iter: I) -> EnergyLedger {
        iter.fold(EnergyLedger::new(), |a, b| a + b)
    }
}

impl fmt::Display for EnergyLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (cat, e) in self.iter() {
            writeln!(
                f,
                "{:<26} {:>12}  ({:>5.1}%)",
                cat.label(),
                e.to_string(),
                self.fraction(cat) * 100.0
            )?;
        }
        write!(f, "{:<26} {:>12}", "Total", self.total().to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one() {
        let mut ledger = EnergyLedger::new();
        for (i, cat) in NodeCategory::ALL.into_iter().enumerate() {
            ledger.charge(cat, Energy::from_nanojoules((i + 1) as f64));
        }
        let sum: f64 = NodeCategory::ALL.iter().map(|&c| ledger.fraction(c)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_ledger_is_safe() {
        let ledger = EnergyLedger::new();
        assert_eq!(ledger.total(), Energy::ZERO);
        assert_eq!(ledger.fraction(NodeCategory::Compute), 0.0);
    }

    #[test]
    fn merge_adds_categorywise() {
        let mut a = EnergyLedger::new();
        a.charge(NodeCategory::Compute, Energy::from_joules(1.0));
        let mut b = EnergyLedger::new();
        b.charge(NodeCategory::Compute, Energy::from_joules(2.0));
        b.charge(NodeCategory::Network, Energy::from_joules(4.0));
        let merged: EnergyLedger = [a, b].into_iter().sum();
        assert!((merged.get(NodeCategory::Compute).as_joules() - 3.0).abs() < 1e-12);
        assert!((merged.get(NodeCategory::Network).as_joules() - 4.0).abs() < 1e-12);
        assert!((merged.total().as_joules() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn merge_and_delta_are_inverse() {
        let mut base = EnergyLedger::new();
        base.charge(NodeCategory::Compute, Energy::from_nanojoules(5.0));
        base.charge(NodeCategory::Static, Energy::from_nanojoules(7.0));
        let snapshot = base;
        base.charge(NodeCategory::Compute, Energy::from_nanojoules(2.0));
        base.charge(NodeCategory::Network, Energy::from_nanojoules(3.0));
        let delta = base.delta_since(&snapshot);
        assert!((delta.get(NodeCategory::Compute).as_nanojoules() - 2.0).abs() < 1e-12);
        assert!((delta.get(NodeCategory::Network).as_nanojoules() - 3.0).abs() < 1e-12);
        assert_eq!(delta.get(NodeCategory::Static), Energy::ZERO);
        let mut rebuilt = snapshot;
        rebuilt.merge(&delta);
        assert!((rebuilt.total().as_joules() - base.total().as_joules()).abs() < 1e-24);
    }

    #[test]
    fn mean_power_over_span() {
        let mut ledger = EnergyLedger::new();
        ledger.charge(NodeCategory::Static, Energy::from_joules(2.0));
        let p = ledger.mean_power(NodeCategory::Static, TimeDelta::from_secs(4));
        assert!((p.as_watts() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_shows_every_category() {
        let mut ledger = EnergyLedger::new();
        ledger.charge(NodeCategory::Compute, Energy::from_nanojoules(78.0));
        let text = ledger.to_string();
        for cat in NodeCategory::ALL {
            assert!(text.contains(cat.label()), "missing {}", cat.label());
        }
        assert!(text.contains("Total"));
    }
}
