//! Energy and power models for the Swallow platform.
//!
//! Swallow's defining feature is *energy transparency*: a predictable
//! relationship between software execution and hardware energy consumption
//! (§I of the paper). This crate is that relationship, factored into:
//!
//! * [`units`] — strongly-typed [`Energy`], [`Power`], [`Voltage`] and
//!   [`Capacitance`] quantities,
//! * [`core_power`] — the per-core power model calibrated against Eq. 1
//!   (`Pc = 46 + 0.30·f` mW under load) and the Fig. 3 idle line, with
//!   per-instruction-class energies in the style of Kerrison et al.
//!   (ACM TECS 2015, the paper's ref. 4),
//! * [`dvfs`] — the voltage/frequency table behind Fig. 4 (0.60 V floor at
//!   71 MHz, 0.95 V at 500 MHz) and the `P = C·V²·f` scaling rule,
//! * [`link`] — per-bit link energies from Table I, derived from wire-class
//!   capacitance (which is the physical knob the paper identifies: the
//!   30 cm FFC cable's capacitance costs 50× the on-board energy),
//! * [`supply`] — the switch-mode supplies whose conversion losses turn a
//!   3.1 W slice into a ≈4.5 W slice (§III.A),
//! * [`account`] — the per-node energy ledger behind the Fig. 2 breakdown,
//! * [`adc`] — the measurement daughter-board (2 MS/s single-channel,
//!   1 MS/s all-channel) and its sample traces.

pub mod account;
pub mod adc;
pub mod core_power;
pub mod dvfs;
pub mod link;
pub mod supply;
pub mod units;

pub use account::{EnergyLedger, NodeCategory};
pub use adc::{AdcBoard, AdcConfig, AdcError, SampleTrace};
pub use core_power::CorePowerModel;
pub use dvfs::{DvfsTable, VoltageScaling};
pub use link::{WireClass, WireParams};
pub use supply::Smps;
pub use units::{Capacitance, Energy, Power, Voltage};
