//! Per-bit link energy by wire class (Table I).
//!
//! The XS1 five-wire link protocol needs only four wire transitions per
//! byte of data (§II) — half the worst case of a naïve serial link. Energy
//! per transition is set by the driven wire's capacitance and swing
//! (`E = C·V²`), so energy per bit is
//!
//! ```text
//! E/bit = (4 transitions / 8 bits) · C·V² = C·V²/2
//! ```
//!
//! The capacitances below are chosen so the four Swallow wire classes land
//! on the measured Table I values; they are physically plausible (11 pF of
//! package-internal routing, ≈40 pF of PCB trace, ≈2 nF for 30 cm of FFC
//! ribbon — the cable capacitance the paper blames for the 50× jump).

use crate::units::{Capacitance, Energy, Voltage};
use swallow_sim::Frequency;

/// Wire transitions per byte of payload under the five-wire protocol.
pub const TRANSITIONS_PER_BYTE: f64 = 4.0;

/// The four physical wire classes of a Swallow system.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WireClass {
    /// Links inside an XS1-L2A package (core↔core).
    OnChip,
    /// Board traces between vertically adjacent chips on a slice.
    BoardVertical,
    /// Board traces between horizontally adjacent chips on a slice.
    BoardHorizontal,
    /// 30 cm flexible flat cable between slices.
    OffBoardFfc,
}

impl WireClass {
    /// All wire classes, nearest first.
    pub const ALL: [WireClass; 4] = [
        WireClass::OnChip,
        WireClass::BoardVertical,
        WireClass::BoardHorizontal,
        WireClass::OffBoardFfc,
    ];

    /// Human-readable name matching Table I's rows.
    pub const fn name(self) -> &'static str {
        match self {
            WireClass::OnChip => "On-chip",
            WireClass::BoardVertical => "On-board, vertical",
            WireClass::BoardHorizontal => "On-board, horizontal",
            WireClass::OffBoardFfc => "Off-board, 30cm FFC",
        }
    }

    /// The physical parameters of this class in the Swallow configuration.
    pub fn swallow_params(self) -> WireParams {
        match self {
            // On-chip: 1 V swing, 11.2 pF → 5.6 pJ/bit at 250 Mbit/s.
            WireClass::OnChip => WireParams::new(
                Capacitance::from_picofarads(11.2),
                Voltage::from_volts(1.0),
                Frequency::from_mhz(250),
            ),
            // Board traces: 3.3 V I/O swing. 212.8 pJ/bit ⇒ 39.08 pF.
            WireClass::BoardVertical => WireParams::new(
                Capacitance::from_picofarads(2.0 * 212.8 / (3.3 * 3.3)),
                Voltage::from_volts(3.3),
                Frequency::from_khz(62_500),
            ),
            // 201.6 pJ/bit ⇒ 37.02 pF.
            WireClass::BoardHorizontal => WireParams::new(
                Capacitance::from_picofarads(2.0 * 201.6 / (3.3 * 3.3)),
                Voltage::from_volts(3.3),
                Frequency::from_khz(62_500),
            ),
            // 10 880 pJ/bit ⇒ ≈2 nF of ribbon cable.
            WireClass::OffBoardFfc => WireParams::new(
                Capacitance::from_picofarads(2.0 * 10_880.0 / (3.3 * 3.3)),
                Voltage::from_volts(3.3),
                Frequency::from_khz(62_500),
            ),
        }
    }

    /// Energy per transmitted bit in the Swallow configuration.
    pub fn energy_per_bit(self) -> Energy {
        self.swallow_params().energy_per_bit()
    }

    /// The configured data rate in the Swallow system (Table I column 2).
    pub fn data_rate(self) -> Frequency {
        self.swallow_params().rate
    }
}

/// Physical parameters of a link wire class.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WireParams {
    /// Capacitance driven per wire transition.
    pub capacitance: Capacitance,
    /// Signal swing.
    pub voltage: Voltage,
    /// Configured bit rate (bits per second, expressed as a frequency).
    pub rate: Frequency,
}

impl WireParams {
    /// Creates wire parameters.
    pub fn new(capacitance: Capacitance, voltage: Voltage, rate: Frequency) -> Self {
        WireParams {
            capacitance,
            voltage,
            rate,
        }
    }

    /// Energy per transmitted bit: `C·V²/2` (four transitions per byte).
    pub fn energy_per_bit(&self) -> Energy {
        self.capacitance.transition_energy(self.voltage) * (TRANSITIONS_PER_BYTE / 8.0)
    }

    /// Energy per 8-bit token.
    pub fn energy_per_token(&self) -> Energy {
        self.energy_per_bit() * 8.0
    }

    /// Worst-case link power: every bit slot busy at the configured rate.
    pub fn max_power(&self) -> crate::units::Power {
        crate::units::Power::from_watts(
            self.energy_per_bit().as_joules() * self.rate.as_hz() as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table I of the paper, verbatim: (class, rate bit/s, pJ/bit).
    const TABLE_I: [(WireClass, u64, f64); 4] = [
        (WireClass::OnChip, 250_000_000, 5.6),
        (WireClass::BoardVertical, 62_500_000, 212.8),
        (WireClass::BoardHorizontal, 62_500_000, 201.6),
        (WireClass::OffBoardFfc, 62_500_000, 10_880.0),
    ];

    #[test]
    fn energy_per_bit_matches_table_i() {
        for (class, rate, pj_per_bit) in TABLE_I {
            let e = class.energy_per_bit().as_picojoules();
            assert!(
                (e - pj_per_bit).abs() / pj_per_bit < 0.005,
                "{}: {e} pJ/bit vs Table I {pj_per_bit}",
                class.name()
            );
            assert_eq!(class.data_rate().as_hz(), rate);
        }
    }

    #[test]
    fn max_link_power_matches_table_i() {
        // Table I column 3: 1.4 mW, 13.3 mW, 12.6 mW, 680 mW.
        let expect = [1.4, 13.3, 12.6, 680.0];
        for (class, mw) in WireClass::ALL.into_iter().zip(expect) {
            let p = class.swallow_params().max_power().as_milliwatts();
            assert!(
                (p - mw).abs() / mw < 0.01,
                "{}: {p} mW vs Table I {mw}",
                class.name()
            );
        }
    }

    #[test]
    fn off_board_is_roughly_50x_on_board() {
        let on_board = WireClass::BoardVertical.energy_per_bit().as_picojoules();
        let off_board = WireClass::OffBoardFfc.energy_per_bit().as_picojoules();
        let factor = off_board / on_board;
        assert!((45.0..=55.0).contains(&factor), "factor = {factor}");
    }

    #[test]
    fn token_energy_is_eight_bits() {
        let p = WireClass::OnChip.swallow_params();
        let ratio = p.energy_per_token().as_joules() / p.energy_per_bit().as_joules();
        assert!((ratio - 8.0).abs() < 1e-9);
    }

    #[test]
    fn capacitances_are_physically_plausible() {
        // ≈2 nF for 30 cm of FFC (≈66 pF/cm), tens of pF for PCB traces,
        // ≈11 pF inside the package.
        let ffc = WireClass::OffBoardFfc.swallow_params().capacitance;
        assert!((1.5e-9..2.5e-9).contains(&ffc.as_farads()), "ffc = {ffc}");
        let pcb = WireClass::BoardVertical.swallow_params().capacitance;
        assert!((20e-12..60e-12).contains(&pcb.as_farads()), "pcb = {pcb}");
        let chip = WireClass::OnChip.swallow_params().capacitance;
        assert!((5e-12..20e-12).contains(&chip.as_farads()), "chip = {chip}");
    }
}
