//! Switch-mode power supply (SMPS) model.
//!
//! Each Swallow slice carries five SMPS fed from a 5 V input: four deliver
//! 1 V to two chips (four cores) each, the fifth delivers 3.3 V for I/O and
//! support logic (§II). Conversion losses plus support logic lift a slice
//! from 3.1 W of core power to ≈4.5 W at the input (§III.A) — about 18 % of
//! node power in the Fig. 2 breakdown.
//!
//! The model is the standard first-order one: a fixed controller overhead
//! plus a load-proportional conversion loss.

use crate::units::{Energy, Power};
use swallow_sim::TimeDelta;

/// Conversion efficiency of the slice SMPS at typical load. Calibrated
/// so a fully loaded slice (3.1 W of core power, §III.A) draws ≈4.5 W at
/// the 5 V input — and thus a 30-slice machine draws the paper's 134 W.
pub const DEFAULT_EFFICIENCY: f64 = 0.78;
/// Fixed controller/switching overhead per supply.
pub const DEFAULT_FIXED_OVERHEAD_MW: f64 = 35.0;

/// A switch-mode supply: `P_in = P_out / η + P_fixed`.
///
/// ```
/// use swallow_energy::{Power, Smps};
/// let smps = Smps::swallow_core_rail();
/// let p_in = smps.input_power(Power::from_milliwatts(772.0)); // 4 cores @193mW
/// assert!(p_in.as_milliwatts() > 772.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Smps {
    efficiency: f64,
    fixed_overhead: Power,
    label: &'static str,
}

impl Smps {
    /// Creates a supply with the given conversion efficiency and fixed
    /// overhead.
    ///
    /// # Panics
    ///
    /// Panics if `efficiency` is not in `(0, 1]`.
    pub fn new(efficiency: f64, fixed_overhead: Power, label: &'static str) -> Self {
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "efficiency must be in (0, 1]"
        );
        Smps {
            efficiency,
            fixed_overhead,
            label,
        }
    }

    /// One of the four 1 V rails feeding two chips (four cores).
    pub fn swallow_core_rail() -> Self {
        Smps::new(
            DEFAULT_EFFICIENCY,
            Power::from_milliwatts(DEFAULT_FIXED_OVERHEAD_MW),
            "1V core rail",
        )
    }

    /// The 3.3 V rail feeding I/O, links and support logic.
    pub fn swallow_io_rail() -> Self {
        Smps::new(
            DEFAULT_EFFICIENCY,
            Power::from_milliwatts(DEFAULT_FIXED_OVERHEAD_MW),
            "3.3V I/O rail",
        )
    }

    /// Conversion efficiency η.
    pub fn efficiency(&self) -> f64 {
        self.efficiency
    }

    /// Descriptive label (used by the measurement subsystem).
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// Input power drawn from the 5 V bus for a given output load.
    pub fn input_power(&self, output: Power) -> Power {
        output / self.efficiency + self.fixed_overhead
    }

    /// The conversion loss alone (input minus output).
    pub fn loss(&self, output: Power) -> Power {
        self.input_power(output) - output
    }

    /// Input-side energy for `output` energy delivered over `span` — the
    /// 5 V-bus view of a rail, as the measurement daughter board sees it.
    pub fn input_energy(&self, output: Energy, span: TimeDelta) -> Energy {
        self.input_power(output.over(span)) * span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_exceeds_output_by_loss() {
        let s = Smps::swallow_core_rail();
        let out = Power::from_milliwatts(800.0);
        let input = s.input_power(out);
        assert!((input.as_watts() - (out + s.loss(out)).as_watts()).abs() < 1e-12);
        assert!(input.as_milliwatts() > 800.0);
    }

    #[test]
    fn slice_level_overhead_lands_near_paper() {
        // 16 cores at 193 mW = 3.09 W of core load across four 1 V rails,
        // plus an I/O rail carrying ≈0.45 W of link/support load. The paper
        // reports ≈4.5 W per slice at the 5 V input (§III.A).
        let core_rails: f64 = (0..4)
            .map(|_| {
                Smps::swallow_core_rail()
                    .input_power(Power::from_milliwatts(4.0 * 193.0))
                    .as_watts()
            })
            .sum();
        let io_rail = Smps::swallow_io_rail()
            .input_power(Power::from_milliwatts(450.0))
            .as_watts();
        let slice = core_rails + io_rail;
        assert!((4.2..=4.8).contains(&slice), "slice input = {slice} W");
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn rejects_bad_efficiency() {
        let _ = Smps::new(0.0, Power::ZERO, "bad");
    }
}
