//! Strongly-typed physical quantities.
//!
//! Newtypes over `f64` keep joules, watts, volts and farads from mixing
//! (C-NEWTYPE). Arithmetic implements only physically meaningful
//! combinations, e.g. `Power * TimeDelta = Energy`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};
use swallow_sim::TimeDelta;

/// An amount of energy, in joules.
///
/// ```
/// use swallow_energy::{Energy, Power};
/// use swallow_sim::TimeDelta;
/// let e = Power::from_milliwatts(193.0) * TimeDelta::from_us(1);
/// assert!((e.as_nanojoules() - 193.0).abs() < 1e-9);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, PartialOrd)]
pub struct Energy(f64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// Creates an energy from joules.
    pub const fn from_joules(j: f64) -> Self {
        Energy(j)
    }

    /// Creates an energy from picojoules.
    pub fn from_picojoules(pj: f64) -> Self {
        Energy(pj * 1e-12)
    }

    /// Creates an energy from nanojoules.
    pub fn from_nanojoules(nj: f64) -> Self {
        Energy(nj * 1e-9)
    }

    /// The value in joules.
    pub const fn as_joules(self) -> f64 {
        self.0
    }

    /// The value in nanojoules.
    pub fn as_nanojoules(self) -> f64 {
        self.0 * 1e9
    }

    /// The value in picojoules.
    pub fn as_picojoules(self) -> f64 {
        self.0 * 1e12
    }

    /// Average power over a span; zero for a zero-length span.
    pub fn over(self, span: TimeDelta) -> Power {
        let secs = span.as_secs_f64();
        if secs == 0.0 {
            Power::ZERO
        } else {
            Power(self.0 / secs)
        }
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let j = self.0;
        let (value, unit) = if j.abs() >= 1.0 {
            (j, "J")
        } else if j.abs() >= 1e-3 {
            (j * 1e3, "mJ")
        } else if j.abs() >= 1e-6 {
            (j * 1e6, "uJ")
        } else if j.abs() >= 1e-9 {
            (j * 1e9, "nJ")
        } else {
            (j * 1e12, "pJ")
        };
        write!(f, "{value:.3}{unit}")
    }
}

impl Add for Energy {
    type Output = Energy;
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}

impl Sub for Energy {
    type Output = Energy;
    fn sub(self, rhs: Energy) -> Energy {
        Energy(self.0 - rhs.0)
    }
}

impl Mul<f64> for Energy {
    type Output = Energy;
    fn mul(self, rhs: f64) -> Energy {
        Energy(self.0 * rhs)
    }
}

impl Div<Energy> for Energy {
    type Output = f64;
    fn div(self, rhs: Energy) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        iter.fold(Energy::ZERO, |a, b| a + b)
    }
}

/// A power, in watts.
#[derive(Clone, Copy, Debug, Default, PartialEq, PartialOrd)]
pub struct Power(f64);

impl Power {
    /// Zero power.
    pub const ZERO: Power = Power(0.0);

    /// Creates a power from watts.
    pub const fn from_watts(w: f64) -> Self {
        Power(w)
    }

    /// Creates a power from milliwatts.
    pub fn from_milliwatts(mw: f64) -> Self {
        Power(mw * 1e-3)
    }

    /// The value in watts.
    pub const fn as_watts(self) -> f64 {
        self.0
    }

    /// The value in milliwatts.
    pub fn as_milliwatts(self) -> f64 {
        self.0 * 1e3
    }

    /// The value in microwatts (the unit the in-system probe reports).
    pub fn as_microwatts(self) -> f64 {
        self.0 * 1e6
    }
}

impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.0;
        let (value, unit) = if w.abs() >= 1.0 {
            (w, "W")
        } else if w.abs() >= 1e-3 {
            (w * 1e3, "mW")
        } else {
            (w * 1e6, "uW")
        };
        write!(f, "{value:.3}{unit}")
    }
}

impl Add for Power {
    type Output = Power;
    fn add(self, rhs: Power) -> Power {
        Power(self.0 + rhs.0)
    }
}

impl AddAssign for Power {
    fn add_assign(&mut self, rhs: Power) {
        self.0 += rhs.0;
    }
}

impl Sub for Power {
    type Output = Power;
    fn sub(self, rhs: Power) -> Power {
        Power(self.0 - rhs.0)
    }
}

impl Mul<f64> for Power {
    type Output = Power;
    fn mul(self, rhs: f64) -> Power {
        Power(self.0 * rhs)
    }
}

impl Div<f64> for Power {
    type Output = Power;
    fn div(self, rhs: f64) -> Power {
        Power(self.0 / rhs)
    }
}

impl Mul<TimeDelta> for Power {
    type Output = Energy;
    fn mul(self, rhs: TimeDelta) -> Energy {
        Energy(self.0 * rhs.as_secs_f64())
    }
}

impl Sum for Power {
    fn sum<I: Iterator<Item = Power>>(iter: I) -> Power {
        iter.fold(Power::ZERO, |a, b| a + b)
    }
}

/// An electric potential, in volts.
#[derive(Clone, Copy, Debug, Default, PartialEq, PartialOrd)]
pub struct Voltage(f64);

impl Voltage {
    /// Creates a voltage from volts.
    pub const fn from_volts(v: f64) -> Self {
        Voltage(v)
    }

    /// The value in volts.
    pub const fn as_volts(self) -> f64 {
        self.0
    }

    /// `V²`, the quantity appearing in `P = C·V²·f`.
    pub fn squared(self) -> f64 {
        self.0 * self.0
    }
}

impl fmt::Display for Voltage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}V", self.0)
    }
}

/// A capacitance, in farads.
#[derive(Clone, Copy, Debug, Default, PartialEq, PartialOrd)]
pub struct Capacitance(f64);

impl Capacitance {
    /// Creates a capacitance from farads.
    pub const fn from_farads(f: f64) -> Self {
        Capacitance(f)
    }

    /// Creates a capacitance from picofarads.
    pub fn from_picofarads(pf: f64) -> Self {
        Capacitance(pf * 1e-12)
    }

    /// The value in farads.
    pub const fn as_farads(self) -> f64 {
        self.0
    }

    /// Energy of one full charge/discharge at `v`: `E = C·V²`.
    pub fn transition_energy(self, v: Voltage) -> Energy {
        Energy(self.0 * v.squared())
    }
}

impl fmt::Display for Capacitance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let farads = self.0;
        if farads.abs() >= 1e-9 {
            write!(f, "{:.2}nF", farads * 1e9)
        } else {
            write!(f, "{:.2}pF", farads * 1e12)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_times_time_is_energy() {
        let e = Power::from_watts(2.0) * TimeDelta::from_ms(500);
        assert!((e.as_joules() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn energy_over_time_is_power() {
        let p = Energy::from_joules(3.0).over(TimeDelta::from_secs(2));
        assert!((p.as_watts() - 1.5).abs() < 1e-12);
        assert_eq!(Energy::from_joules(1.0).over(TimeDelta::ZERO), Power::ZERO);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(Energy::from_picojoules(5.6).to_string(), "5.600pJ");
        assert_eq!(Energy::from_nanojoules(212.8).to_string(), "212.800nJ");
        assert_eq!(Power::from_milliwatts(193.0).to_string(), "193.000mW");
        assert_eq!(Power::from_watts(134.0).to_string(), "134.000W");
        assert_eq!(Capacitance::from_picofarads(11.2).to_string(), "11.20pF");
        assert_eq!(Capacitance::from_picofarads(2000.0).to_string(), "2.00nF");
    }

    #[test]
    fn transition_energy_follows_cv2() {
        let c = Capacitance::from_picofarads(10.0);
        let e = c.transition_energy(Voltage::from_volts(2.0));
        assert!((e.as_picojoules() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn sums_and_scaling() {
        let total: Energy = (1..=3).map(|i| Energy::from_joules(i as f64)).sum();
        assert!((total.as_joules() - 6.0).abs() < 1e-12);
        let p: Power = [Power::from_watts(1.0), Power::from_watts(0.5)]
            .into_iter()
            .sum();
        assert!(((p * 2.0).as_watts() - 3.0).abs() < 1e-12);
        assert!(((p / 3.0).as_watts() - 0.5).abs() < 1e-12);
    }
}
